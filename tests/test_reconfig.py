"""Tests for repro.service.reconfig — the unified reconfiguration plane.

The contracts pinned here:

- **golden delta differentials**: at three cursor schedules × worker
  counts {1, 4}, applying the publisher's
  :class:`~repro.service.reconfig.GenerationDelta` to the previous
  generation produces an index **byte-identical** to the full
  snapshot — same content-hash ``version``, same entry tuple, same
  wire answers — and the delta is always smaller than the snapshot;
- schedule validation happens **up front**: duplicate instants, empty
  indexes, no-op swaps, broken delta chains, and malformed rebalances
  all raise :class:`ReconfigError` (a ``ValueError``) before any
  request replays;
- **drained rolling swaps**: with ``drain=True`` each replica
  finishes its queued batch under the old generation before
  rebinding; serial ≡ thread, no response mixes generations (clean or
  under the replica crash/partition/slow grid), and the recorded
  :class:`ReconfigEvent` lag is the actual drain time;
- **live rebalancing**: a mid-replay
  :class:`~repro.service.reconfig.RebalancePlan` migrates routing
  keys between shards with the faults-off cluster ≡ single-node
  equivalence intact, and :func:`plan_rebalance` moves exactly the
  keys HRW says must move (minimal disruption, pinned by hypothesis);
- the event log's ``verify_index`` failure paths actually fail, and
  ``events_since`` at cursor == end-of-log returns an empty page
  without advancing.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clock import SimTime
from repro.errors import LiveError, ReproError
from repro.exec import StudyExecutor
from repro.faults import FaultSpec
from repro.live import GenerationPublisher, IncrementalStudy, WorldDriver
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import events_from_reconfigs
from repro.service import (
    ClusterConfig,
    ClusterService,
    DeltaApply,
    GenerationDelta,
    GenerationSwap,
    LinkStatusIndex,
    LinkStatusService,
    RebalancePlan,
    ReconfigError,
    ServerConfig,
    ServiceFaultPlan,
    apply_delta,
    normalize_schedule,
    plan_rebalance,
    rendezvous_owner,
    snapshot_wire_bytes,
)
from repro.service.server import answer

from test_live import (
    K,
    POLICY,
    SCHEDULES,
    SEED,
    assert_no_mixed_generation,
    drive_to,
    fresh_world,
    swap_workload,
)

# -- the shared driven publisher --------------------------------------------------


@pytest.fixture(scope="module")
def reconfig_run():
    """One world driven through the canonical script, all three
    generations retained (the delta chain needs every link alive).

    Shared, already-driven state: tests must not drive it further.
    Returns (publisher, generations).
    """
    world = fresh_world()
    driver = WorldDriver(world)
    inc = IncrementalStudy(world, sample_size=K, seed=SEED, policy=POLICY)
    publisher = GenerationPublisher(metrics=MetricsRegistry(), retain=3)
    generations = []
    previous = -1.0
    for offset in (0.0, 10.0, 40.0):
        drive_to(world, driver, previous, offset)
        previous = offset
        result = inc.build(SimTime(world.study_time.days + offset))
        generations.append(publisher.publish(result))
    assert len({g.version for g in generations}) == 3
    return publisher, generations


def delta_chain(generations):
    return [
        GenerationDelta.between(a.index, b.index)
        for a, b in zip(generations, generations[1:])
    ]


def swap_instants(requests):
    horizon = max(r.arrival_ms for r in requests)
    return (horizon / 3.0, 2.0 * horizon / 3.0)


# -- golden delta differentials ---------------------------------------------------


@pytest.mark.parametrize("workers", [1, 4])
@pytest.mark.parametrize("schedule", sorted(SCHEDULES), ids=str)
def test_delta_applied_index_is_byte_identical(schedule, workers):
    """At every cursor schedule × worker count, the delta rebuilds the
    full snapshot exactly: version, entries, and wire answers."""
    world = fresh_world()
    driver = WorldDriver(world)
    inc = IncrementalStudy(world, sample_size=K, seed=SEED, policy=POLICY)
    previous = -1.0
    serving = None
    for offset in SCHEDULES[schedule]:
        drive_to(world, driver, previous, offset)
        previous = offset
        result = inc.build(
            SimTime(world.study_time.days + offset),
            executor=StudyExecutor(workers=workers),
        )
        snapshot = LinkStatusIndex.build(result.report)
        if serving is not None and snapshot.version != serving.version:
            delta = GenerationDelta.between(serving, snapshot)
            rebuilt = apply_delta(serving, delta)
            assert rebuilt.version == snapshot.version
            assert rebuilt.entries == snapshot.entries
            assert rebuilt.gap_days == snapshot.gap_days
            for entry in snapshot.entries[:5]:
                assert answer(rebuilt, "url", entry.url) == answer(
                    snapshot, "url", entry.url
                )
            assert answer(rebuilt, "bucket_counts", "") == answer(
                snapshot, "bucket_counts", ""
            )
            # Byte savings hold whenever the dirty set is a proper
            # subset; a schedule gap past the re-probe epoch (the
            # "coalesced" cursor) legitimately touches everything,
            # and there a delta costs its positions extra.
            touched = len(delta.upserts) + len(delta.removals)
            if touched < len(snapshot):
                assert delta.wire_bytes() < snapshot_wire_bytes(snapshot)
        serving = snapshot


def test_delta_is_the_dirty_subset_not_the_snapshot(reconfig_run):
    _, generations = reconfig_run
    g0, g1, _ = generations
    delta = GenerationDelta.between(g0.index, g1.index)
    # The script touches a few URLs between builds 1 and 2 — the delta
    # ships those, not the whole sample.
    assert 0 < len(delta.upserts) + len(delta.removals) < len(g1.index)
    assert delta.from_version == g0.version
    assert delta.to_version == g1.version
    assert delta.delta_id.startswith("gd-")
    assert delta.delta_id in delta.summary()


def test_apply_delta_refuses_wrong_base_and_corruption(reconfig_run):
    _, generations = reconfig_run
    g0, g1, g2 = generations
    delta = GenerationDelta.between(g0.index, g1.index)
    with pytest.raises(ReconfigError):
        apply_delta(g2.index, delta)  # wrong serving generation
    bad_position = GenerationDelta(
        from_version=delta.from_version,
        to_version=delta.to_version,
        upserts=tuple(
            (10_000, entry) for _, entry in delta.upserts[:1]
        ),
        removals=delta.removals,
        gap_days=delta.gap_days,
    )
    with pytest.raises(ReconfigError):
        apply_delta(g0.index, bad_position)
    # ReconfigError is a ReproError and a ValueError — both idioms
    # used by existing callers keep working.
    assert issubclass(ReconfigError, ValueError)
    assert issubclass(ReconfigError, ReproError)


def test_publisher_build_delta_and_metrics(reconfig_run):
    publisher, generations = reconfig_run
    g0, g1, g2 = generations
    # Defaults: previous retained generation -> current.
    delta = publisher.build_delta()
    assert (delta.from_version, delta.to_version) == (
        g1.version, g2.version,
    )
    explicit = publisher.build_delta(g0, g1)
    assert (explicit.from_version, explicit.to_version) == (
        g0.version, g1.version,
    )
    counters = publisher.metrics.counters("live.")
    assert counters["live.deltas.built"] >= 2
    savings = publisher.metrics.gauge("live.delta.savings_ratio").value
    assert 0.0 < savings < 1.0
    lonely = GenerationPublisher()
    with pytest.raises(LiveError):
        lonely.build_delta()


def test_publisher_history_walks_retained_generations(reconfig_run):
    publisher, generations = reconfig_run
    covered = generations[0].index.entries[0].url
    states = publisher.history(covered)
    assert [s.seq for s in states] == [g.seq for g in generations]
    assert all(
        s.version == g.version for s, g in zip(states, generations)
    )
    assert any(s.entry is not None for s in states)
    assert all(
        (s.bucket is None) == (s.entry is None) for s in states
    )
    # A URL the study never sampled still gets a full timeline, all
    # "not covered".
    ghost = publisher.history("http://never-sampled.test/x")
    assert len(ghost) == len(generations)
    assert all(s.entry is None for s in ghost)
    assert "not covered" in ghost[0].summary()
    # n limits to the most recent generations.
    assert [s.seq for s in publisher.history(covered, n=2)] == [
        generations[-2].seq, generations[-1].seq,
    ]
    with pytest.raises(LiveError):
        publisher.history(covered, n=0)


# -- up-front schedule validation -------------------------------------------------


def test_schedule_rejects_duplicate_instants(reconfig_run):
    _, generations = reconfig_run
    g0, g1, _ = generations
    with pytest.raises(ReconfigError, match="strictly increasing"):
        normalize_schedule(
            [(100.0, g1.index), (100.0, g0.index)], g0.index
        )


def test_schedule_rejects_empty_index(reconfig_run):
    _, generations = reconfig_run
    g0 = generations[0]
    with pytest.raises(ReconfigError, match="empty index"):
        normalize_schedule(
            [(50.0, LinkStatusIndex(entries=()))], g0.index
        )


def test_schedule_rejects_noop_swap_and_noop_delta(reconfig_run):
    _, generations = reconfig_run
    g0, g1, _ = generations
    with pytest.raises(ReconfigError, match="re-installs"):
        normalize_schedule([(50.0, g0.index)], g0.index)
    # The chain is walked: installing g1 then g1 again is a no-op at
    # schedule position 2 even though g1 != g0.
    with pytest.raises(ReconfigError, match="re-installs"):
        normalize_schedule(
            [(50.0, g1.index), (60.0, g1.index)], g0.index
        )


def test_schedule_rejects_broken_delta_chain(reconfig_run):
    _, generations = reconfig_run
    g0, g1, g2 = generations
    d01, d12 = delta_chain(generations)
    # d12 applies to g1, but g0 is serving at its instant.
    with pytest.raises(ReconfigError, match="broken delta chain"):
        normalize_schedule([DeltaApply(at_ms=50.0, delta=d12)], g0.index)
    # Correct chains pass, mixed with legacy tuples and swaps.
    ops = normalize_schedule(
        [
            DeltaApply(at_ms=50.0, delta=d01),
            (80.0, g2.index),
        ],
        g0.index,
    )
    assert [op.kind for op in ops] == ["delta", "swap"]
    with pytest.raises(ReconfigError, match="carries no delta"):
        normalize_schedule([DeltaApply(at_ms=50.0)], g0.index)
    with pytest.raises(ReconfigError, match="pairs"):
        normalize_schedule([42.0], g0.index)


def test_schedule_rejects_malformed_rebalances(reconfig_run):
    _, generations = reconfig_run
    g0 = generations[0]
    move = RebalancePlan(at_ms=50.0, moves=(("a.test", "shard-0"),))
    with pytest.raises(ReconfigError, match="without shards"):
        normalize_schedule([move], g0.index)
    shards = ("shard-0", "shard-1")
    with pytest.raises(ReconfigError, match="moves nothing"):
        normalize_schedule(
            [RebalancePlan(at_ms=50.0)], g0.index,
            allow_rebalance=True, shard_ids=shards,
        )
    with pytest.raises(ReconfigError, match="twice"):
        normalize_schedule(
            [RebalancePlan(at_ms=50.0, moves=(
                ("a.test", "shard-0"), ("a.test", "shard-1"),
            ))],
            g0.index, allow_rebalance=True, shard_ids=shards,
        )
    with pytest.raises(ReconfigError, match="unknown"):
        normalize_schedule(
            [RebalancePlan(at_ms=50.0, moves=(("a.test", "shard-9"),))],
            g0.index, allow_rebalance=True, shard_ids=shards,
        )
    ok = normalize_schedule(
        [move], g0.index, allow_rebalance=True, shard_ids=shards
    )
    assert ok[0].kind == "rebalance"
    # Single-node serve() rejects rebalances through the same gate.
    requests = swap_workload(g0.index, n=20)
    with pytest.raises(ReconfigError):
        LinkStatusService(g0.index).serve(requests, swaps=[move])


# -- delta swaps through the serving tiers ----------------------------------------


def test_delta_apply_serves_identically_to_snapshot_swap(reconfig_run):
    _, generations = reconfig_run
    g0, g1, g2 = generations
    requests = swap_workload(g0.index)
    t1, t2 = swap_instants(requests)
    d01, d12 = delta_chain(generations)
    via_snapshots = LinkStatusService(g0.index).serve(
        requests, swaps=[(t1, g1.index), (t2, g2.index)]
    )
    via_deltas = LinkStatusService(g0.index).serve(
        requests,
        swaps=[
            DeltaApply(at_ms=t1, delta=d01),
            DeltaApply(at_ms=t2, delta=d12),
        ],
    )
    assert [r.to_wire() for r in via_snapshots.responses] == [
        r.to_wire() for r in via_deltas.responses
    ]
    assert via_snapshots.index_versions == via_deltas.index_versions
    assert [e.kind for e in via_deltas.reconfig_events] == [
        "delta", "delta",
    ]
    assert [e.kind for e in via_snapshots.reconfig_events] == [
        "swap", "swap",
    ]
    assert all(e.lag_ms == 0.0 for e in via_deltas.reconfig_events)
    assert via_deltas.metrics.counter(
        "service.reconfig.applied"
    ).int_value == 2


# -- drained rolling swaps --------------------------------------------------------


def drained_swaps(requests, generations):
    _, g1, g2 = generations
    t1, t2 = swap_instants(requests)
    return [
        GenerationSwap(at_ms=t1, drain=True, index=g1.index),
        GenerationSwap(at_ms=t2, drain=True, index=g2.index),
    ]


def test_single_node_drained_swap_finishes_batch_under_old_binding(
    reconfig_run,
):
    _, generations = reconfig_run
    g0 = generations[0]
    requests = swap_workload(g0.index)
    serial = LinkStatusService(g0.index).serve(
        requests, mode="serial", swaps=drained_swaps(requests, generations)
    )
    threaded = LinkStatusService(g0.index).serve(
        requests, mode="thread", swaps=drained_swaps(requests, generations)
    )
    assert [r.to_wire() for r in serial.responses] == [
        r.to_wire() for r in threaded.responses
    ]
    assert serial.index_versions == tuple(g.version for g in generations)
    assert_no_mixed_generation(serial, requests, generations)
    events = serial.reconfig_events
    assert [e.kind for e in events] == ["swap", "swap"]
    assert all(e.lag_ms >= 0.0 for e in events)
    # At this offered load a batch is open at the swap instants, so at
    # least one cutover actually drained (positive lag).
    assert sum(e.drained_batches for e in events) >= 1
    assert max(e.lag_ms for e in events) > 0.0
    slo_events = events_from_reconfigs(events)
    assert [e.latency_ms for e in slo_events] == sorted(
        e.lag_ms for e in events
    )


def test_drained_swap_answers_match_atomic_generationwise(reconfig_run):
    """Drain changes *when* each response's generation cuts over, not
    what any generation answers: re-deriving every response from its
    reported generation is exactly the no-mixing contract, checked
    against a schedule where drains landed late."""
    _, generations = reconfig_run
    g0 = generations[0]
    requests = swap_workload(g0.index, n=900, rps=4000.0)
    result = LinkStatusService(g0.index).serve(
        requests, swaps=drained_swaps(requests, generations)
    )
    assert_no_mixed_generation(result, requests, generations)
    drained = [e for e in result.reconfig_events if e.drained_batches]
    for event in drained:
        assert event.applied_ms > event.scheduled_ms


def test_cluster_rolling_drained_swap_under_chaos(reconfig_run):
    """Rolling per-replica drains under crash + slow chaos: replicas
    cut over one by one, yet no response ever mixes generations and
    serial ≡ thread byte-for-byte."""
    _, generations = reconfig_run
    g0 = generations[0]
    requests = swap_workload(g0.index)
    swaps = drained_swaps(requests, generations)
    plan = ServiceFaultPlan(
        seed=5,
        replica_crash=FaultSpec(rate=0.5),
        crash_horizon_ms=float(max(r.arrival_ms for r in requests)),
        crash_duration_ms=40.0,
        replica_slow=FaultSpec(rate=0.3),
    )

    def run(mode):
        return ClusterService(
            g0.index, ServerConfig(),
            ClusterConfig(n_shards=2, replicas_per_shard=2),
            faults=plan,
        ).serve(requests, mode=mode, swaps=list(swaps))

    chaotic = run("serial")
    assert chaotic.fault_events
    assert chaotic.index_versions == tuple(g.version for g in generations)
    assert_no_mixed_generation(chaotic, requests, generations)
    assert [e.kind for e in chaotic.reconfig_events] == ["swap", "swap"]
    threaded = run("thread")
    assert [r.to_wire() for r in chaotic.responses] == [
        r.to_wire() for r in threaded.responses
    ]


# -- live shard rebalancing -------------------------------------------------------


def hot_keys(index, count=3):
    """The busiest routing keys (registrable domains) in the index."""
    sizes: dict[str, int] = {}
    for entry in index.entries:
        sizes[entry.domain] = sizes.get(entry.domain, 0) + 1
    return sorted(sizes, key=lambda d: (-sizes[d], d))[:count]


def cross_shard_moves(service, keys):
    """Move each key off the shard that owns it (a real migration)."""
    moves = []
    for key in keys:
        owner = rendezvous_owner(key, service.shard_ids)
        target = next(s for s in service.shard_ids if s != owner)
        moves.append((key, target))
    return tuple(moves)


def test_mid_replay_rebalance_keeps_single_node_equivalence(reconfig_run):
    """Moving hot domains between shards mid-replay must be invisible
    at the wire: the faults-off cluster stays byte-identical to the
    single-node run, which never rebalances at all."""
    _, generations = reconfig_run
    g0 = generations[0]
    requests = swap_workload(g0.index)
    single = LinkStatusService(g0.index).serve(requests, mode="serial")

    def run(mode):
        service = ClusterService(
            g0.index, ServerConfig(),
            ClusterConfig(n_shards=2, replicas_per_shard=2),
        )
        plan = RebalancePlan(
            at_ms=swap_instants(requests)[0],
            moves=cross_shard_moves(service, hot_keys(g0.index)),
        )
        return service, service.serve(
            requests, mode=mode, swaps=[plan]
        )

    service, result = run("serial")
    assert [r.to_wire() for r in single.responses] == [
        r.to_wire() for r in result.responses
    ]
    # The generation never changed; ownership did.
    assert result.index_versions == (g0.version,)
    (event,) = result.reconfig_events
    assert event.kind == "rebalance"
    assert event.moved_keys == 3
    assert event.from_version == event.to_version == g0.version
    for key, target in cross_shard_moves(service, hot_keys(g0.index)):
        moved_to = service.shard_for("domain", key)
        assert moved_to == target
    assert result.metrics.counter(
        "service.cluster.rebalanced_keys"
    ).int_value == 3
    _, threaded = run("thread")
    assert [r.to_wire() for r in result.responses] == [
        r.to_wire() for r in threaded.responses
    ]


def test_rebalance_composes_with_drained_swaps_under_chaos(reconfig_run):
    """The full plane at once: a drained generation swap, a mid-replay
    rebalance, and a second swap, under replica chaos — zero mixed
    generations, deterministic replay."""
    _, generations = reconfig_run
    g0 = generations[0]
    requests = swap_workload(g0.index)
    t1, t2 = swap_instants(requests)
    plan = ServiceFaultPlan(
        seed=9,
        replica_crash=FaultSpec(rate=0.4),
        crash_horizon_ms=float(max(r.arrival_ms for r in requests)),
        crash_duration_ms=50.0,
    )

    def run(mode):
        service = ClusterService(
            g0.index, ServerConfig(),
            ClusterConfig(n_shards=2, replicas_per_shard=2),
            faults=plan,
        )
        swaps = [
            GenerationSwap(
                at_ms=t1, drain=True, index=generations[1].index
            ),
            RebalancePlan(
                at_ms=(t1 + t2) / 2.0,
                moves=cross_shard_moves(service, hot_keys(g0.index, 2)),
            ),
            GenerationSwap(
                at_ms=t2, drain=True, index=generations[2].index
            ),
        ]
        return service.serve(requests, mode=mode, swaps=swaps)

    chaotic = run("serial")
    assert chaotic.index_versions == tuple(g.version for g in generations)
    assert_no_mixed_generation(chaotic, requests, generations)
    kinds = [e.kind for e in chaotic.reconfig_events]
    assert sorted(kinds) == ["rebalance", "swap", "swap"]
    threaded = run("thread")
    assert [r.to_wire() for r in chaotic.responses] == [
        r.to_wire() for r in threaded.responses
    ]


@pytest.mark.chaos
@pytest.mark.parametrize(
    "topology", [(2, 2), (4, 1), (2, 3)], ids=lambda t: f"{t[0]}x{t[1]}"
)
@pytest.mark.parametrize("policy", ["round_robin", "least_outstanding"])
def test_reconfig_chaos_grid(reconfig_run, topology, policy):
    """Tier-2 sweep: rolling drained swaps + a mid-replay rebalance
    stay clean across topologies and policies under the full replica
    fault vocabulary (crash + partition + slow)."""
    _, generations = reconfig_run
    g0 = generations[0]
    requests = swap_workload(g0.index, n=1500, rps=3000.0)
    t1, t2 = swap_instants(requests)
    horizon = max(r.arrival_ms for r in requests)
    n_shards, replicas = topology
    plan = ServiceFaultPlan(
        seed=13,
        replica_crash=FaultSpec(rate=0.4),
        crash_horizon_ms=horizon,
        crash_duration_ms=60.0,
        replica_partition=FaultSpec(rate=0.3),
        partition_horizon_ms=horizon,
        partition_duration_ms=50.0,
        replica_slow=FaultSpec(rate=0.3),
    )

    def run(mode):
        service = ClusterService(
            g0.index, ServerConfig(),
            ClusterConfig(
                n_shards=n_shards, replicas_per_shard=replicas,
                policy=policy,
            ),
            faults=plan,
        )
        swaps = [
            GenerationSwap(
                at_ms=t1, drain=True, index=generations[1].index
            ),
            RebalancePlan(
                at_ms=(t1 + t2) / 2.0,
                moves=cross_shard_moves(service, hot_keys(g0.index, 2)),
            ),
            GenerationSwap(
                at_ms=t2, drain=True, index=generations[2].index
            ),
        ]
        return service.serve(requests, mode=mode, swaps=swaps)

    chaotic = run("serial")
    assert chaotic.index_versions == tuple(g.version for g in generations)
    assert_no_mixed_generation(chaotic, requests, generations)
    threaded = run("thread")
    assert [r.to_wire() for r in chaotic.responses] == [
        r.to_wire() for r in threaded.responses
    ]


# -- HRW minimal disruption (hypothesis) ------------------------------------------


key_sets = st.lists(
    st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz0123456789.-",
        min_size=1, max_size=16,
    ),
    min_size=1, max_size=24, unique=True,
)
shard_sets = st.lists(
    st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz0123456789-",
        min_size=1, max_size=8,
    ),
    min_size=1, max_size=6, unique=True,
).map(tuple)


@settings(max_examples=50, deadline=None)
@given(keys=key_sets, shards=shard_sets, extra=st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=8,
))
def test_plan_rebalance_on_shard_add_is_hrw_minimal(keys, shards, extra):
    new = shards + (f"new-{extra}",)
    plan = plan_rebalance(keys, shards, new, at_ms=10.0)
    moved = dict(plan.moves)
    for key in keys:
        before = rendezvous_owner(key, shards)
        after = rendezvous_owner(key, new)
        if before == after:
            # Minimal disruption: an unmoved key is not in the plan.
            assert key not in moved
        else:
            # Every move lands on the added shard (only it can win
            # new scores), at the key's true new owner.
            assert moved[key] == after == new[-1]
    assert plan.kind == "rebalance"
    assert plan.drain  # rebalances default to drained application


@settings(max_examples=50, deadline=None)
@given(keys=key_sets, shards=shard_sets)
def test_plan_rebalance_on_shard_remove_moves_only_its_keys(keys, shards):
    if len(shards) < 2:
        return
    removed, survivors = shards[0], shards[1:]
    plan = plan_rebalance(keys, shards, survivors, at_ms=10.0)
    moved = dict(plan.moves)
    for key in keys:
        before = rendezvous_owner(key, shards)
        if before == removed:
            assert moved[key] == rendezvous_owner(key, survivors)
        else:
            # Keys the removed shard never owned stay exactly put.
            assert key not in moved
            assert rendezvous_owner(key, survivors) == before


# -- event log: failure paths and the end-of-log page -----------------------------


def test_event_log_verify_index_fails_on_corruption():
    from repro.wiki.events import EventLog, LinkPostedEvent

    log = EventLog()
    for i in range(4):
        log.append(
            LinkPostedEvent(f"http://u{i % 2}.test/", "A", SimTime(float(i)))
        )
    log.verify_index()
    # A dropped posting: the index disagrees with a full scan.
    dropped = log._by_url["http://u0.test/"].pop()
    with pytest.raises(AssertionError, match="out of sync"):
        log.verify_index()
    log._by_url["http://u0.test/"].append(dropped)
    log.verify_index()  # restored — sanity before the next corruption
    # A phantom URL key fails the same dict comparison.
    log._by_url["http://ghost.test/"] = [1]
    with pytest.raises(AssertionError, match="out of sync"):
        log.verify_index()
    del log._by_url["http://ghost.test/"]
    # Positions out of emission order break the per-URL ordering check
    # even when the key sets agree.
    log._by_url["http://u0.test/"].reverse()
    with pytest.raises(AssertionError):
        log.verify_index()


def test_event_log_paging_at_end_of_log():
    from repro.wiki.events import EventLog, LinkPostedEvent

    log = EventLog()
    for i in range(3):
        log.append(LinkPostedEvent(f"http://u{i}.test/", "A", SimTime(float(i))))
    # cursor == end-of-log is valid and returns an empty page that
    # does not advance — a poller at the head can spin safely.
    batch, cursor = log.events_since(len(log))
    assert batch == ()
    assert cursor == len(log) == log.cursor
    batch, cursor = log.events_since(len(log), limit=5)
    assert (batch, cursor) == ((), len(log))
    # One past the end is a caller bug, not an empty page.
    with pytest.raises(ValueError):
        log.events_since(len(log) + 1)
    # The empty log's end is cursor 0.
    empty = EventLog()
    assert empty.events_since(0) == ((), 0)
