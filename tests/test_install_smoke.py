"""Install smoke test: a numpy-free interpreter must work end-to-end.

The original bug: ``repro.textsim.shingles`` imported numpy
unconditionally, so a clean ``pip install repro`` (no extras) broke
``repro.archive.crawler`` — world generation died inside
:class:`~repro.archive.crawler.BodySketcher` before a single capture.

These tests recreate that clean-install world inside a subprocess by
installing a ``sys.meta_path`` blocker that makes ``import numpy``
raise, then drive the exact path that used to break: import the
crawler, sketch bodies, and generate a whole (tiny) world. The parent
process compares the subprocess's sketches and world census against
its own — when numpy is installed here, that is a full cross-backend
differential check riding along for free.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parents[1] / "src"

#: Bodies covering the sketching edge cases: normal prose, repeated
#: tokens, fewer tokens than the shingle width, one token, and empty.
SAMPLE_BODIES = [
    "the quick brown fox jumps over the lazy dog again and again",
    "alpha beta gamma delta epsilon zeta eta theta iota kappa",
    "alpha alpha alpha alpha alpha alpha alpha alpha",
    "short body",
    "one",
    "",
]

#: WorldConfig kwargs for the tiny end-to-end crawl.
TINY_WORLD = {"n_links": 80, "target_sample": 40, "seed": 11}

_CHILD_SCRIPT = """
import json, sys


class _NumpyBlocker:
    def find_spec(self, name, path=None, target=None):
        if name == "numpy" or name.startswith("numpy."):
            raise ImportError("numpy is blocked by the install smoke test")
        return None


sys.meta_path.insert(0, _NumpyBlocker())

import repro.numerics as numerics

assert numerics.BACKEND == "stdlib", (
    "blocked numpy but backend is " + numerics.BACKEND
)

from repro.archive.crawler import BodySketcher
from repro.dataset.worldgen import WorldConfig, generate_world
from repro.textsim.shingles import minhash_sketch

payload = json.loads(sys.stdin.read())
sketcher = BodySketcher()
world = generate_world(WorldConfig(**payload["world"]))
print(
    json.dumps(
        {
            "backend": numerics.BACKEND,
            "minhash": [list(minhash_sketch(t)) for t in payload["texts"]],
            "sketcher": [list(sketcher.sketch(t)) for t in payload["texts"]],
            "snapshots": len(world.store),
            "snapshot_urls": world.store.url_count(),
            "capture_attempts": world.crawler.capture_attempts,
            "sketch_misses": world.crawler._sketcher.misses,
        }
    )
)
"""


def _run_numpy_free_child() -> dict:
    """Run the blocker subprocess; returns its JSON report."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    # The child must exercise *default* selection with numpy absent;
    # a forced-numpy override from the parent run would (correctly)
    # refuse to start under the blocker.
    env.pop("REPRO_ANALYSIS_BACKEND", None)
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD_SCRIPT],
        input=json.dumps({"texts": SAMPLE_BODIES, "world": TINY_WORLD}),
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    assert proc.returncode == 0, (
        f"numpy-free child failed:\n{proc.stderr}"
    )
    return json.loads(proc.stdout)


@pytest.fixture(scope="module")
def child_report() -> dict:
    return _run_numpy_free_child()


def test_numpy_free_interpreter_selects_stdlib_backend(child_report):
    assert child_report["backend"] == "stdlib"


def test_numpy_free_crawler_sketches_match_this_process(child_report):
    """Sketches without numpy equal sketches with it (when present)."""
    from repro.archive.crawler import BodySketcher
    from repro.textsim.shingles import minhash_sketch

    sketcher = BodySketcher()
    assert child_report["minhash"] == [
        list(minhash_sketch(t)) for t in SAMPLE_BODIES
    ]
    assert child_report["sketcher"] == [
        list(sketcher.sketch(t)) for t in SAMPLE_BODIES
    ]


def test_numpy_free_world_generation_crawls_cleanly(child_report):
    """A whole tiny world builds without numpy, identically to here."""
    from repro.dataset.worldgen import WorldConfig, generate_world

    assert child_report["snapshots"] > 0
    assert child_report["capture_attempts"] > 0
    world = generate_world(WorldConfig(**TINY_WORLD))
    assert child_report["snapshots"] == len(world.store)
    assert child_report["snapshot_urls"] == world.store.url_count()
    assert child_report["capture_attempts"] == world.crawler.capture_attempts
    assert child_report["sketch_misses"] == world.crawler._sketcher.misses
