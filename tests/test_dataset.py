"""Tests for repro.dataset — records, profiles, planner, collection."""

import pytest

from repro.clock import SimTime
from repro.dataset import profiles
from repro.dataset.planner import Disposition, SiteKind, plan_universe
from repro.dataset.records import Dataset, LinkRecord
from repro.dataset.sampler import sample_iabot_marked
from repro.dataset.collector import CollectedLink
from repro.dataset.worldgen import WorldConfig
from repro.errors import DatasetError, WorldGenError
from repro.rng import RngRegistry, Stream
from repro.wiki.templates import IABOT_USERNAME

T2010 = SimTime.from_ymd(2010, 1, 1)
T2016 = SimTime.from_ymd(2016, 1, 1)


class TestLinkRecord:
    def _record(self, url="http://www.site.co.uk/a/b.html") -> LinkRecord:
        return LinkRecord(
            url=url,
            article_title="T",
            posted_at=T2010,
            marked_at=T2016,
            marked_by=IABOT_USERNAME,
            site_ranking=1234,
        )

    def test_derived_fields(self):
        record = self._record()
        assert record.hostname == "www.site.co.uk"
        assert record.domain == "site.co.uk"
        assert record.directory == "http://www.site.co.uk/a/"

    def test_dataset_aggregations(self):
        ds = Dataset(
            records=[
                self._record("http://a.site.com/x"),
                self._record("http://b.site.com/y"),
                self._record("http://other.org/z"),
            ]
        )
        assert ds.domains() == {"site.com": 2, "other.org": 1}
        assert len(ds.hostnames()) == 3
        assert len(ds.posting_years()) == 3
        assert ds.rankings() == [1234, 1234, 1234]


class TestProfiles:
    def test_posting_times_respect_bound(self):
        rng = Stream(1)
        latest = SimTime.from_ymd(2022, 2, 23)
        for _ in range(500):
            assert profiles.draw_posting_time(rng, latest) < latest

    def test_posting_distribution_shape(self):
        # The raw weights deliberately over-represent recent years
        # (inverse marking attrition — see profiles.py); the Figure 3c
        # 40%/20% shape is asserted over the *marked* population by the
        # benchmarks. Here: the raw profile must be recent-heavy and
        # span the whole 2004-2022 range.
        rng = Stream(2)
        latest = SimTime.from_ymd(2022, 2, 23)
        years = [
            profiles.draw_posting_time(rng, latest).fractional_year()
            for _ in range(4000)
        ]
        after_2015 = sum(1 for y in years if y >= 2016.0) / len(years)
        assert 0.40 < after_2015 < 0.75
        assert min(years) < 2006.0
        assert max(years) > 2021.0

    def test_domain_sizes_bounded_by_remaining(self):
        rng = Stream(3)
        assert profiles.draw_domain_size(rng, 1) == 1

    def test_rankings_in_range(self):
        rng = Stream(4)
        for _ in range(300):
            rank = profiles.draw_site_ranking(rng)
            assert profiles.RANK_MIN <= rank <= profiles.RANK_MAX

    def test_crawl_rate_popularity_effect(self):
        rng = Stream(5)
        popular = sum(profiles.draw_crawl_rate(rng, 1_000) for _ in range(300))
        obscure = sum(profiles.draw_crawl_rate(rng, 900_000) for _ in range(300))
        assert popular > obscure

    def test_extra_pages_popularity_effect(self):
        rng = Stream(6)
        popular = sum(profiles.draw_extra_pages(rng, 1_000) for _ in range(100))
        obscure = sum(profiles.draw_extra_pages(rng, 900_000) for _ in range(100))
        assert popular > obscure


class TestPlanner:
    def _plans(self, n_links=800, seed=5):
        config = WorldConfig(n_links=n_links, target_sample=n_links, seed=seed)
        return config, plan_universe(config, RngRegistry(seed))

    def test_all_links_allocated(self):
        config, plans = self._plans()
        assert sum(len(p.links) for p in plans) == config.n_links

    def test_domain_sizes_heavy_tailed(self):
        _, plans = self._plans(n_links=2000)
        singles = sum(1 for p in plans if len(p.links) == 1)
        assert singles / len(plans) > 0.55

    def test_quotas_roughly_filled(self):
        config, plans = self._plans(n_links=3000)
        links = [link for p in plans for link in p.links]
        dying = round(config.n_links * (1 - config.stays_alive_frac))
        stays = sum(1 for l in links if l.disposition is Disposition.STAYS_ALIVE)
        typos = sum(1 for l in links if l.disposition is Disposition.TYPO)
        assert abs(stays - (config.n_links - dying)) < config.n_links * 0.05
        assert typos > 0
        assert abs(typos - round(dying * config.typo_frac)) < dying * 0.02

    def test_dispositions_on_compatible_sites(self):
        _, plans = self._plans(n_links=3000)
        for plan in plans:
            for link in plan.links:
                if link.disposition is Disposition.TYPO:
                    assert plan.kind in (SiteKind.HARD404, SiteKind.REDIRECT_ERA)
                if link.disposition is Disposition.STAYS_ALIVE:
                    assert plan.kind.stays_up

    def test_large_sites_avoid_impairment_kinds(self):
        _, plans = self._plans(n_links=4000)
        for plan in plans:
            if len(plan.links) > 12:
                assert plan.kind not in (
                    SiteKind.FLAKY,
                    SiteKind.GEO_403,
                    SiteKind.GEO_TIMEOUT,
                    SiteKind.OUTAGE,
                    SiteKind.ABANDONED_PARKED,
                )

    def test_deterministic(self):
        _, plans_a = self._plans(seed=9)
        _, plans_b = self._plans(seed=9)
        urls_a = [(p.kind, len(p.links)) for p in plans_a]
        urls_b = [(p.kind, len(p.links)) for p in plans_b]
        assert urls_a == urls_b


class TestWorldConfigValidation:
    def test_bad_n_links(self):
        with pytest.raises(WorldGenError):
            WorldConfig(n_links=0)

    def test_bad_fractions(self):
        with pytest.raises(WorldGenError):
            WorldConfig(stays_alive_frac=1.5)
        with pytest.raises(WorldGenError):
            WorldConfig(typo_frac=0.9, query_deep_frac=0.9)

    def test_sweep_ordering(self):
        with pytest.raises(WorldGenError):
            WorldConfig(
                first_sweep=SimTime.from_ymd(2021, 1, 1),
                sweep_until=SimTime.from_ymd(2020, 1, 1),
            )

    def test_sweep_times_spacing(self):
        config = WorldConfig()
        times = config.sweep_times
        assert times[0] == config.first_sweep
        gaps = {round(b.days - a.days) for a, b in zip(times, times[1:])}
        assert gaps == {round(config.sweep_interval_days)}


class TestSampler:
    def _collected(self, n_iabot=20, n_human=5):
        links = []
        for i in range(n_iabot):
            links.append(
                CollectedLink(
                    url=f"http://a.com/{i}",
                    article_title="T",
                    posted_at=T2010,
                    marked_at=T2016,
                    marked_by=IABOT_USERNAME,
                )
            )
        for i in range(n_human):
            links.append(
                CollectedLink(
                    url=f"http://b.com/{i}",
                    article_title="T",
                    posted_at=T2010,
                    marked_at=T2016,
                    marked_by="SomeHuman",
                )
            )
        return links

    def test_filters_to_iabot(self):
        sample = sample_iabot_marked(self._collected(), k=100)
        assert len(sample) == 20
        assert all(link.marked_by == IABOT_USERNAME for link in sample)

    def test_sample_size_respected(self):
        sample = sample_iabot_marked(self._collected(), k=7, seed=3)
        assert len(sample) == 7

    def test_deterministic_under_seed(self):
        a = sample_iabot_marked(self._collected(), k=7, seed=3)
        b = sample_iabot_marked(self._collected(), k=7, seed=3)
        assert [l.url for l in a] == [l.url for l in b]

    def test_negative_k_rejected(self):
        with pytest.raises(DatasetError):
            sample_iabot_marked(self._collected(), k=-1)
