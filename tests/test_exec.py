"""Tests for repro.exec: memoizing backend stacks and the sharded executor.

The memo stacks must be *exact* — byte-identical answers to the
unwrapped backends — and the executor must produce the same
:class:`StudyReport` at any worker count. Both properties are what the
rest of the suite (and the paper numbers) silently rely on.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.analysis.study import Study, StudyReport
from repro.archive.cdx import CdxQuery, MatchType
from repro.backends import CdxBackend, FetchBackend
from repro.dataset.worldgen import WorldConfig, generate_world
from repro.exec import StudyExecutor
from repro.exec.executor import _shard_spans
from repro.faults import FaultPlan
from repro.retry import DEFAULT_MASKING_POLICY


@pytest.fixture(scope="module")
def tiny_world():
    """A very small generated world for executor-level tests."""
    return generate_world(WorldConfig(n_links=260, target_sample=200, seed=7))


def _fresh_study(world) -> Study:
    # A new Study per run: the soft-404 detector consumes RNG streams,
    # so reusing one Study across runs would entangle the comparisons.
    return Study.from_world(world)


def assert_reports_identical(a: StudyReport, b: StudyReport) -> None:
    """Field-for-field equality, ignoring execution-shape artifacts.

    ``stats`` (wall times) is skipped outright; ``outcomes`` is
    compared with per-record provenance stripped — cache-hit splits
    differ across shard shapes, but every measurement field must not.
    """
    for f in dataclasses.fields(StudyReport):
        if f.name == "stats":
            continue
        if f.name == "outcomes":
            assert _sans_provenance(a.outcomes) == _sans_provenance(
                b.outcomes
            ), f.name
            continue
        assert getattr(a, f.name) == getattr(b, f.name), f.name


def _sans_provenance(outcomes):
    if outcomes is None:
        return None
    return tuple(
        dataclasses.replace(outcome, provenance=None) for outcome in outcomes
    )


# -- caching backends --------------------------------------------------------------


class TestCdxBackend:
    def _queries(self, study: Study) -> list[CdxQuery]:
        queries: list[CdxQuery] = []
        for record in study.records[:40]:
            for match in MatchType:
                for exclude in (False, True):
                    queries.append(
                        CdxQuery(
                            url=record.url,
                            match_type=match,
                            exclude_self=exclude,
                        )
                    )
            queries.append(
                CdxQuery(
                    url=record.url,
                    match_type=MatchType.DIRECTORY,
                    initial_status=200,
                )
            )
            queries.append(
                CdxQuery(url=record.url, match_type=MatchType.HOST, limit=3)
            )
        return queries

    def test_identical_to_unwrapped(self, tiny_world):
        raw = tiny_world.cdx
        cached = CdxBackend(raw)
        for query in self._queries(_fresh_study(tiny_world)):
            assert cached.query(query) == raw.query(query), query
            assert cached.archived_urls(query) == raw.archived_urls(
                query
            ), query

    def test_counters_advance_and_absorb_repeats(self, tiny_world):
        raw = tiny_world.cdx
        cached = CdxBackend(raw)
        queries = self._queries(_fresh_study(tiny_world))
        for query in queries:
            cached.query(query)
        assert cached.misses > 0
        # exclude_self variants share a normalized base entry, so the
        # very first pass already produces hits.
        assert cached.hits > 0
        hits_before = cached.hits
        backend_before = raw.query_count
        for query in queries:
            cached.query(query)
        assert cached.hits == hits_before + len(queries)
        assert raw.query_count == backend_before
        assert cached.query_count == 2 * len(queries)
        assert 0.0 < cached.hit_rate < 1.0


class TestFetchBackend:
    def test_identical_to_unwrapped(self, tiny_world):
        study = _fresh_study(tiny_world)
        raw = tiny_world.fetcher()
        cached = FetchBackend(tiny_world.fetcher())
        for record in study.records[:30]:
            assert cached.fetch(record.url, study.at) == raw.fetch(
                record.url, study.at
            )

    def test_repeat_fetches_hit_the_memo(self, tiny_world):
        study = _fresh_study(tiny_world)
        cached = FetchBackend(tiny_world.fetcher())
        urls = list(dict.fromkeys(r.url for r in study.records[:30]))
        first = [cached.fetch(url, study.at) for url in urls]
        assert cached.hits == 0 and cached.misses == len(urls)
        again = [cached.fetch(url, study.at) for url in urls]
        assert again == first
        assert cached.hits == len(urls)
        # A different instant is a different key, not a stale answer.
        later = study.at.plus_days(365)
        cached.fetch(urls[0], later)
        assert cached.misses == len(urls) + 1

    def test_seed_preempts_the_backend(self, tiny_world):
        study = _fresh_study(tiny_world)
        url = study.records[0].url
        probe = tiny_world.fetcher().fetch(url, study.at)
        cached = FetchBackend(tiny_world.fetcher())
        cached.seed(url, study.at, probe)
        assert cached.hits == 0 and cached.misses == 0
        assert cached.fetch(url, study.at) is probe
        assert cached.hits == 1 and cached.misses == 0


# -- sharding ----------------------------------------------------------------------


class TestShardSpans:
    @pytest.mark.parametrize(
        "n,shards",
        [(0, 4), (1, 4), (7, 3), (10, 1), (100, 16), (5, 5), (13, 4)],
    )
    def test_contiguous_cover(self, n, shards):
        spans = _shard_spans(n, shards)
        covered = [i for start, stop in spans for i in range(start, stop)]
        assert covered == list(range(n))
        sizes = [stop - start for start, stop in spans]
        if sizes:
            assert max(sizes) - min(sizes) <= 1
        assert len(spans) <= max(shards, 1)


# -- executor equivalence ----------------------------------------------------------


class TestExecutorEquivalence:
    def test_serial_matches_parallel(self, tiny_world):
        serial = _fresh_study(tiny_world).run()
        parallel = _fresh_study(tiny_world).run(
            executor=StudyExecutor(workers=3)
        )
        assert serial == parallel
        assert_reports_identical(serial, parallel)
        assert parallel.stats.workers == 3
        assert parallel.stats.shards == 3
        # The *logical* request volume is execution-shape-independent;
        # only who answered (memo vs backend) may shift.
        assert parallel.stats.fetches == serial.stats.fetches
        assert parallel.stats.cdx_queries == serial.stats.cdx_queries

    def test_stats_attached_and_populated(self, tiny_world):
        report = _fresh_study(tiny_world).run()
        stats = report.stats
        assert stats is not None
        assert set(stats.phase_seconds) >= {
            "probe+census",
            "soft404",
            "temporal",
            "spatial",
            "typos",
        }
        assert stats.total_seconds > 0.0
        assert stats.fetches > 0 and stats.cdx_queries > 0
        assert stats.backend_fetches <= stats.fetches
        assert stats.cdx_cache_hit_rate > 0.0
        assert "cache hit rate" in stats.summary()

    def test_serial_run_records_its_single_shard_wall(self, tiny_world):
        stats = _fresh_study(tiny_world).run().stats
        assert stats.shard_wall_count == 1
        assert stats.shard_wall_min == stats.shard_wall_max
        assert 0.0 < stats.shard_wall_total <= stats.total_seconds
        assert "shard wall" in stats.summary()

    def test_parallel_run_folds_per_shard_walls(self, tiny_world):
        stats = (
            _fresh_study(tiny_world)
            .run(executor=StudyExecutor(workers=3))
            .stats
        )
        # One wall reading per shard, measured inside the worker, so
        # imbalance (one slow shard pinning the stage) is visible.
        assert stats.shard_wall_count == stats.shards == 3
        assert 0.0 < stats.shard_wall_min <= stats.shard_wall_max
        assert stats.shard_wall_total >= stats.shard_wall_max
        assert stats.registry.histogram("shard.wall_s").count == 3

    def test_stats_do_not_break_report_equality(self, tiny_world):
        a = _fresh_study(tiny_world).run()
        b = _fresh_study(tiny_world).run()
        assert a.stats is not b.stats
        assert a.stats.phase_seconds != {} and b.stats.phase_seconds != {}
        assert a == b  # wall-clock differences must not matter

    @pytest.mark.slow
    def test_parallel_equivalence_on_small_world(
        self, small_world, small_report
    ):
        parallel = Study.from_world(small_world).run(
            executor=StudyExecutor(workers=4)
        )
        assert parallel == small_report
        assert_reports_identical(small_report, parallel)


# -- retry counter aggregation -----------------------------------------------------


class TestRetryStatsAggregation:
    """StudyStats retry accounting must be exact across topologies."""

    def test_fault_free_runs_leave_retry_counters_zero(self, tiny_world):
        for executor in (None, StudyExecutor(workers=3)):
            stats = _fresh_study(tiny_world).run(executor).stats
            assert stats.fetch_retries == 0
            assert stats.fetch_giveups == 0
            assert stats.cdx_retries == 0
            assert stats.cdx_giveups == 0
            assert stats.backoff_ms == 0.0
            assert stats.total_retries == 0
            assert stats.retry_giveup_rate == 0.0

    def test_serial_masked_accounting_matches_injected_faults(self, tiny_world):
        # Every injected transient is masked by exactly one successful
        # retry bout, so the study totals must equal the injectors'
        # own fault counts — the end-to-end accounting cross-check.
        plan = FaultPlan.transient_everywhere(rate=0.2, seed=5)
        study = Study.from_world(
            tiny_world, faults=plan, retry_policy=DEFAULT_MASKING_POLICY
        )
        stats = study.run().stats
        dns = study.fetcher._dns.channel.injected
        connect = study.fetcher._origin.channel.injected
        assert stats.fetch_retries == dns + connect > 0
        assert stats.cdx_retries == study.cdx.injected > 0
        assert stats.total_giveups == 0
        assert stats.backoff_ms > 0.0
        assert "retries: fetch" in stats.summary()

    def test_parallel_folds_worker_shard_deltas(self, tiny_world):
        plan = FaultPlan.transient_everywhere(rate=0.2, seed=5)
        serial = Study.from_world(
            tiny_world, faults=plan, retry_policy=DEFAULT_MASKING_POLICY
        ).run()
        parallel = Study.from_world(
            tiny_world, faults=plan, retry_policy=DEFAULT_MASKING_POLICY
        ).run(StudyExecutor(workers=3))
        assert serial == parallel
        assert_reports_identical(serial, parallel)
        # Worker processes re-encounter keys their siblings already
        # cleared, so the parallel run can only retry *more* — and the
        # executor must have folded those shard deltas in, not lost
        # them on the way back from the pool.
        assert parallel.stats.total_retries >= serial.stats.total_retries > 0
        assert parallel.stats.total_giveups == 0
        assert parallel.stats.backoff_ms >= serial.stats.backoff_ms > 0.0

    def test_study_policy_inherited_by_default_executor(self, tiny_world):
        plan = FaultPlan.transient_archive(rate=0.2, seed=5)
        study = Study.from_world(
            tiny_world, faults=plan, retry_policy=DEFAULT_MASKING_POLICY
        )
        report = study.run()  # no executor passed: Study must arm it
        assert report.stats.cdx_retries > 0
        assert report.stats.cdx_giveups == 0
