"""Tests for scripts/trace_report.py — the JSONL trace summarizer.

The script's one hard numerical contract: the phase wall totals it
reconstructs from ``kind="phase"`` spans match the traced run's
``stats.phase_seconds`` *exactly* — ``StudyStats.phase`` writes the
identical measured figure to both the counter and the span, and floats
round-trip exactly through JSON. The rest is rendering: the top-N
ranking honors N, bucket attribution covers every record, and an empty
trace exits nonzero instead of printing an empty report.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

from repro.analysis.study import Study
from repro.exec import StudyExecutor
from repro.obs import Tracer, bucket_attribution, phase_totals, read_jsonl

REPO_ROOT = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "trace_report", REPO_ROOT / "scripts" / "trace_report.py"
)
trace_report = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(trace_report)

N_RECORDS = 60


@pytest.fixture(scope="module")
def traced_run(small_world, tmp_path_factory):
    """A small traced study: (report, spans from disk, JSONL path)."""
    base = Study.from_world(small_world)
    study = Study(
        records=base.records[:N_RECORDS],
        fetcher=base.fetcher,
        cdx=base.cdx,
        at=base.at,
    )
    tracer = Tracer()
    report = study.run(executor=StudyExecutor(workers=1), tracer=tracer)
    path = tmp_path_factory.mktemp("trace") / "run.jsonl"
    tracer.write_jsonl(path)
    return report, read_jsonl(path), path


def test_phase_totals_match_stats_exactly(traced_run):
    report, spans, _ = traced_run
    totals = phase_totals(spans)
    assert totals == report.stats.phase_seconds
    # Same keys, same order (phases are recorded in execution order).
    assert list(totals) == list(report.stats.phase_seconds)


def test_top_n_ranking(traced_run):
    _, spans, _ = traced_run
    from repro.obs import top_records

    top5 = trace_report.top_records(spans, n=5)
    assert len(top5) == 5
    # Most expensive first, ties broken on URL: the order is total.
    keys = [(-cost.wall_seconds, cost.url) for cost in top5]
    assert keys == sorted(keys)
    # Consistent with the library's own ranking.
    assert [c.url for c in top5] == [c.url for c in top_records(spans, n=5)]


def test_bucket_attribution_covers_every_record(traced_run):
    report, spans, _ = traced_run
    buckets = bucket_attribution(spans)
    assert sum(cost.records for cost in buckets.values()) == N_RECORDS
    measured = {o.value: n for o, n in report.counts.items() if n}
    assert {b: c.records for b, c in buckets.items()} == measured


def test_main_prints_report(traced_run, capsys):
    report, _, path = traced_run
    assert trace_report.main([str(path)]) == 0
    out = capsys.readouterr().out
    assert "spans by kind:" in out
    assert "phase wall totals" in out
    assert "top 10 most expensive URLs:" in out
    assert "attribution by Figure-4 bucket:" in out
    # Every phase line the stats block would print appears by name.
    for phase in report.stats.phase_seconds:
        assert phase in out


def test_main_honors_top_flag(traced_run, capsys):
    _, _, path = traced_run
    assert trace_report.main([str(path), "--top", "3"]) == 0
    out = capsys.readouterr().out
    assert "top 3 most expensive URLs:" in out
    header = out.index("most expensive URLs:")
    section = out[header:].split("\n\n")[0].splitlines()
    url_lines = [line for line in section if "http://" in line]
    assert len(url_lines) == 3


def test_main_rejects_empty_trace(tmp_path, capsys):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    assert trace_report.main([str(empty)]) == 1
    assert "no spans" in capsys.readouterr().out


# -- cluster traces --------------------------------------------------------------


@pytest.fixture(scope="module")
def cluster_trace(small_report, tmp_path_factory):
    """A chaos-clustered serve run's span log: (result, spans, path)."""
    from repro.obs import Tracer
    from repro.service import (
        ClusterConfig,
        ClusterService,
        LinkStatusIndex,
        ServerConfig,
        ServiceFaultPlan,
        WorkloadConfig,
        generate_workload,
    )

    index = LinkStatusIndex.build(small_report)
    workload = generate_workload(
        [entry.url for entry in index.entries],
        WorkloadConfig(
            n_requests=1200, offered_rps=2500.0, seed=7,
            aggregate_fraction=0.05, unknown_fraction=0.05,
        ),
    )
    tracer = Tracer()
    result = ClusterService(
        index,
        ServerConfig(),
        ClusterConfig(n_shards=2, replicas_per_shard=2),
        faults=ServiceFaultPlan.crashes(
            rate=0.5, seed=3, horizon_ms=600.0, duration_ms=300.0
        ),
        tracer=tracer,
    ).serve(workload)
    path = tmp_path_factory.mktemp("cluster-trace") / "serve.jsonl"
    tracer.write_jsonl(path)
    return result, read_jsonl(path), path


def test_replica_attribution_covers_every_response(cluster_trace):
    from repro.obs import replica_attribution

    result, spans, _ = cluster_trace
    replicas = replica_attribution(spans)
    # Every replica that served traffic appears with its shard; the
    # front door aggregates the sheds.
    total = sum(cost.requests for cost in replicas.values())
    assert total == len(result.responses)
    sheds = replicas.get("(front door)")
    shed_count = sum(
        1 for r in result.responses if r.status in (429, 503)
    )
    assert (sheds.sheds if sheds else 0) == shed_count
    for name, cost in replicas.items():
        if name == "(front door)":
            continue
        assert cost.shard in ("shard-0", "shard-1")
        assert cost.carriers + cost.riders == cost.requests


def test_redispatch_attribution_names_the_crashed_replicas(cluster_trace):
    from repro.obs import redispatch_attribution

    result, spans, _ = cluster_trace
    redispatches = redispatch_attribution(spans)
    assert redispatches, "crash plan induced no re-dispatch spans"
    assert all(channel == "crash" for (_, channel) in redispatches)
    crashed = {
        event.replica_id
        for event in result.fault_events
        if event.kind == "crash"
    }
    assert {replica for (replica, _) in redispatches} <= crashed
    # Every re-dispatch charges at least one blame span (an
    # all-replicas-down requeue blames each downed replica, so the
    # span count can exceed the re-dispatch counter, never trail it).
    assert sum(redispatches.values()) >= result.redispatches


def test_single_node_trace_has_no_cluster_section(traced_run):
    from repro.obs import replica_attribution

    _, spans, _ = traced_run
    assert replica_attribution(spans) == {}


def test_main_renders_cluster_section(cluster_trace, capsys):
    _, _, path = cluster_trace
    assert trace_report.main([str(path)]) == 0
    out = capsys.readouterr().out
    assert "cluster replicas (from service.request spans):" in out
    assert "forced re-dispatches by (replica, fault channel):" in out
    assert "s0r0" in out and "crash" in out


def test_main_single_node_omits_cluster_section(traced_run, capsys):
    _, _, path = traced_run
    assert trace_report.main([str(path)]) == 0
    out = capsys.readouterr().out
    assert "cluster replicas" not in out
