"""Tests for repro.web — pages, behaviours, sites, the live web."""

import pytest

from repro.clock import SimTime
from repro.errors import ConnectionTimeout, NetworkSimError
from repro.net.http import HttpRequest
from repro.net.status import Outcome
from repro.textsim.shingles import shingle_similarity
from repro.web.behaviors import (
    GeoPolicy,
    MissingPagePolicy,
    OutageWindow,
    SiteState,
)
from repro.web.page import Page, PageFate, PageStatus
from repro.web.site import Site
from repro.web.world import LiveWeb

T2005 = SimTime.from_ymd(2005, 1, 1)
T2008 = SimTime.from_ymd(2008, 1, 1)
T2010 = SimTime.from_ymd(2010, 1, 1)
T2012 = SimTime.from_ymd(2012, 1, 1)
T2016 = SimTime.from_ymd(2016, 1, 1)
T2020 = SimTime.from_ymd(2020, 1, 1)
T2022 = SimTime.from_ymd(2022, 3, 15)


class TestPageLifecycle:
    def test_alive_page(self):
        page = Page(path_query="/a", created_at=T2008)
        assert page.status_at(T2010) is PageStatus.SERVES
        assert page.status_at(T2005) is PageStatus.MISSING

    def test_deleted_page(self):
        page = Page(
            path_query="/a", created_at=T2008, fate=PageFate.DELETED, died_at=T2012
        )
        assert page.alive_at(T2010)
        assert page.status_at(T2016) is PageStatus.MISSING

    def test_never_existed(self):
        page = Page(
            path_query="/a", created_at=T2008, fate=PageFate.NEVER_EXISTED
        )
        assert page.status_at(T2010) is PageStatus.MISSING

    def test_moved_page_before_redirect(self):
        page = Page(
            path_query="/a",
            created_at=T2008,
            fate=PageFate.MOVED,
            died_at=T2012,
            moved_to="http://e.com/b",
            redirect_added_at=T2020,
        )
        assert page.status_at(T2016) is PageStatus.MISSING
        assert page.status_at(T2020) is PageStatus.REDIRECTS
        assert page.status_at(T2022) is PageStatus.REDIRECTS

    def test_moved_page_redirect_removed(self):
        page = Page(
            path_query="/a",
            created_at=T2008,
            fate=PageFate.MOVED,
            died_at=T2010,
            moved_to="http://e.com/b",
            redirect_added_at=T2010,
            redirect_removed_at=T2016,
        )
        assert page.status_at(T2012) is PageStatus.REDIRECTS
        assert page.status_at(T2020) is PageStatus.MISSING

    def test_revived_page(self):
        page = Page(
            path_query="/a",
            created_at=T2008,
            fate=PageFate.DELETED,
            died_at=T2012,
            revived_at=T2020,
        )
        assert page.status_at(T2016) is PageStatus.MISSING
        assert page.status_at(T2022) is PageStatus.SERVES

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            Page(path_query="a", created_at=T2008)  # no leading slash
        with pytest.raises(ValueError):
            Page(path_query="/a", created_at=T2008, fate=PageFate.DELETED)
        with pytest.raises(ValueError):
            Page(
                path_query="/a",
                created_at=T2008,
                fate=PageFate.MOVED,
                died_at=T2012,
            )  # no moved_to
        with pytest.raises(ValueError):
            Page(
                path_query="/a",
                created_at=T2008,
                fate=PageFate.MOVED,
                died_at=T2012,
                moved_to="http://e.com/b",
                redirect_added_at=T2010,  # precedes death
            )
        with pytest.raises(ValueError):
            Page(
                path_query="/a",
                created_at=T2008,
                fate=PageFate.ALIVE,
                revived_at=T2020,  # revival needs DELETED
            )

    def test_working_interval(self):
        page = Page(
            path_query="/a", created_at=T2008, fate=PageFate.DELETED, died_at=T2012
        )
        assert page.working_interval() == (T2008, T2012)
        typo = Page(path_query="/a", created_at=T2008, fate=PageFate.NEVER_EXISTED)
        assert typo.working_interval() is None


class TestSiteState:
    def test_parked(self):
        state = SiteState(parked_from=T2016)
        assert not state.parked_at(T2012)
        assert state.parked_at(T2020)

    def test_geo_from(self):
        state = SiteState(geo=GeoPolicy.BLOCKED_403, geo_from=T2016)
        assert not state.geo_active_at(T2012)
        assert state.geo_active_at(T2020)

    def test_geo_without_onset_always_active(self):
        state = SiteState(geo=GeoPolicy.BLOCKED_TIMEOUT)
        assert state.geo_active_at(T2008)

    def test_outage_window(self):
        state = SiteState(outages=(OutageWindow(start=T2016, end=T2020),))
        assert not state.outage_at(T2012)
        assert state.outage_at(T2016)
        assert not state.outage_at(T2020)

    def test_outage_validation(self):
        with pytest.raises(ValueError):
            OutageWindow(start=T2020, end=T2016)

    def test_timeout_probability_bounds(self):
        with pytest.raises(ValueError):
            SiteState(timeout_probability=1.5)


def _get(site: Site, url: str, at: SimTime, nonce: int = 1):
    return site.respond(HttpRequest.get(url), at, nonce)


class TestSiteResponses:
    def _site(self, policy=MissingPagePolicy.HARD_404, **kwargs) -> Site:
        site = Site(
            hostname="s.example.org",
            seed="tsite",
            created_at=T2005,
            missing_policy=policy,
            **kwargs,
        )
        site.add_page(Page(path_query="/real/page.html", created_at=T2008))
        return site

    def test_alive_page_serves_article(self):
        site = self._site()
        response = _get(site, "http://s.example.org/real/page.html", T2010)
        assert response.status == 200
        assert len(response.body) > 100

    def test_homepage(self):
        response = _get(self._site(), "http://s.example.org/", T2010)
        assert response.status == 200

    def test_login_page(self):
        response = _get(self._site(), "http://s.example.org/login", T2010)
        assert response.status == 200
        assert "password" in response.body

    def test_hard_404(self):
        response = _get(self._site(), "http://s.example.org/nope", T2010)
        assert response.status == 404

    def test_soft_404(self):
        site = self._site(policy=MissingPagePolicy.SOFT_404)
        response = _get(site, "http://s.example.org/nope", T2010)
        assert response.status == 200
        probe = _get(site, "http://s.example.org/alsonope", T2010, nonce=2)
        assert shingle_similarity(response.body, probe.body) > 0.99

    def test_redirect_home(self):
        site = self._site(policy=MissingPagePolicy.REDIRECT_HOME)
        response = _get(site, "http://s.example.org/nope", T2010)
        assert response.status == 302
        assert response.location == site.root_url

    def test_redirect_login(self):
        site = self._site(policy=MissingPagePolicy.REDIRECT_LOGIN)
        response = _get(site, "http://s.example.org/nope", T2010)
        assert response.location == site.login_url

    def test_redirect_offsite(self):
        site = Site(
            hostname="s.example.org",
            seed="x",
            created_at=T2005,
            missing_policy=MissingPagePolicy.REDIRECT_OFFSITE,
            offsite_redirect_target="http://agg.example.net/",
        )
        response = _get(site, "http://s.example.org/nope", T2010)
        assert response.location == "http://agg.example.net/"

    def test_offsite_requires_target(self):
        with pytest.raises(ValueError):
            Site(
                hostname="s.example.org",
                seed="x",
                created_at=T2005,
                missing_policy=MissingPagePolicy.REDIRECT_OFFSITE,
            )

    def test_policy_timeline(self):
        site = Site(
            hostname="s.example.org",
            seed="x",
            created_at=T2005,
            missing_policy=MissingPagePolicy.HARD_404,
            policy_changes=(
                (T2010, MissingPagePolicy.REDIRECT_HOME),
                (T2016, MissingPagePolicy.HARD_404),
            ),
        )
        assert _get(site, "http://s.example.org/x", T2008).status == 404
        assert _get(site, "http://s.example.org/x", T2012).status == 302
        assert _get(site, "http://s.example.org/x", T2020).status == 404

    def test_policy_changes_must_be_ordered(self):
        with pytest.raises(ValueError):
            Site(
                hostname="s",
                seed="x",
                created_at=T2005,
                policy_changes=(
                    (T2016, MissingPagePolicy.SOFT_404),
                    (T2010, MissingPagePolicy.HARD_404),
                ),
            )

    def test_parked_overrides_everything(self):
        site = self._site(state=SiteState(parked_from=T2016))
        real = _get(site, "http://s.example.org/real/page.html", T2020)
        missing = _get(site, "http://s.example.org/nope", T2020, nonce=2)
        assert real.status == 200 and missing.status == 200
        assert shingle_similarity(real.body, missing.body) > 0.99

    def test_geo_403(self):
        site = self._site(
            state=SiteState(geo=GeoPolicy.BLOCKED_403, geo_from=T2016)
        )
        assert _get(site, "http://s.example.org/real/page.html", T2020).status == 403
        assert _get(site, "http://s.example.org/real/page.html", T2010).status == 200

    def test_geo_timeout(self):
        site = self._site(state=SiteState(geo=GeoPolicy.BLOCKED_TIMEOUT))
        with pytest.raises(ConnectionTimeout):
            _get(site, "http://s.example.org/real/page.html", T2010)

    def test_outage_503(self):
        site = self._site(
            state=SiteState(outages=(OutageWindow(start=T2016, end=T2022),))
        )
        assert _get(site, "http://s.example.org/real/page.html", T2020).status == 503

    def test_flaky_timeouts_deterministic_per_day(self):
        site = self._site(state=SiteState(timeout_probability=0.85))
        url = "http://s.example.org/real/page.html"
        outcomes = []
        for _ in range(3):
            try:
                _get(site, url, T2010)
                outcomes.append("ok")
            except ConnectionTimeout:
                outcomes.append("timeout")
        assert len(set(outcomes)) == 1  # same URL, same day, same fate

    def test_duplicate_page_rejected(self):
        site = self._site()
        with pytest.raises(ValueError):
            site.add_page(Page(path_query="/real/page.html", created_at=T2008))


class TestLiveWeb:
    def test_fetch_through_dns(self, micro_web):
        result = micro_web.fetch("http://news.example.com/stays/alive.html", T2010)
        assert result.outcome is Outcome.HTTP_200

    def test_moved_late_lifecycle(self, micro_web):
        url = "http://news.example.com/moved/late.html"
        assert micro_web.fetch(url, T2010).outcome is Outcome.HTTP_200
        assert micro_web.fetch(url, T2016).outcome is Outcome.HTTP_404
        late = micro_web.fetch(url, T2022)
        assert late.outcome is Outcome.HTTP_200
        assert late.redirected

    def test_duplicate_site_rejected(self, micro_web):
        with pytest.raises(NetworkSimError):
            micro_web.add_site(
                Site(hostname="news.example.com", seed="dup", created_at=T2005)
            )

    def test_parked_successor(self):
        web = LiveWeb()
        original = Site(
            hostname="old.example.net",
            seed="orig",
            created_at=T2005,
            dns_dies_at=T2012,
        )
        original.add_page(Page(path_query="/x", created_at=T2008))
        web.add_site(original)
        parked = Site(
            hostname="old.example.net",
            seed="squat",
            created_at=T2016,
            state=SiteState(parked_from=T2016),
        )
        web.add_parked_successor(original, parked)
        assert web.fetch("http://old.example.net/x", T2010).outcome is Outcome.HTTP_200
        assert (
            web.fetch("http://old.example.net/x", SimTime.from_ymd(2014, 1, 1)).outcome
            is Outcome.DNS_FAILURE
        )
        revived = web.fetch("http://old.example.net/x", T2020)
        assert revived.outcome is Outcome.HTTP_200  # parked lander

    def test_parked_successor_requires_expiry(self):
        web = LiveWeb()
        immortal = Site(hostname="x.example.com", seed="a", created_at=T2005)
        web.add_site(immortal)
        with pytest.raises(NetworkSimError):
            web.add_parked_successor(
                immortal,
                Site(hostname="x.example.com", seed="b", created_at=T2016),
            )

    def test_site_by_hostname(self, micro_web):
        assert micro_web.site_by_hostname("news.example.com") is not None
        assert micro_web.site_by_hostname("unknown.example.com") is None
