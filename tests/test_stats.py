"""Unit tests for repro.exec.stats: counters, rates, and formatting.

:class:`StudyStats` is pure arithmetic plus one string renderer, but
``full_run`` and the benchmarks print it verbatim, so its zero-safety
(:func:`_rate`) and its summary format are pinned down here.
"""

from __future__ import annotations

import pytest

from repro.exec.stats import StudyStats, _rate
from repro.obs import MetricsRegistry, Tracer, phase_totals


class TestRate:
    def test_plain_division(self):
        assert _rate(1, 2) == 0.5
        assert _rate(3, 4) == 0.75
        assert _rate(0, 5) == 0.0
        assert _rate(5, 5) == 1.0

    def test_empty_denominator_degrades_to_zero(self):
        assert _rate(0, 0) == 0.0
        assert _rate(7, 0) == 0.0  # never raises, whatever the numerator


class TestCounterIntake:
    def test_fetch_counts_accumulate(self):
        stats = StudyStats()
        stats.add_fetch_counts(hits=3, misses=7)
        stats.add_fetch_counts(hits=2, misses=0)
        assert stats.fetches == 12
        assert stats.fetch_cache_hits == 5
        assert stats.backend_fetches == 7
        assert stats.fetch_cache_hit_rate == pytest.approx(5 / 12)

    def test_cdx_counts_accumulate(self):
        stats = StudyStats()
        stats.add_cdx_counts(hits=8, misses=2)
        assert stats.cdx_queries == 10
        assert stats.cdx_cache_hit_rate == pytest.approx(0.8)

    def test_retry_counts_accumulate_across_calls(self):
        stats = StudyStats()
        stats.add_retry_counts(fetch_retries=2, backoff_ms=300.0)
        stats.add_retry_counts(
            fetch_retries=1, fetch_giveups=1, cdx_retries=4, backoff_ms=50.0
        )
        stats.add_retry_counts(cdx_giveups=2)
        assert stats.fetch_retries == 3
        assert stats.fetch_giveups == 1
        assert stats.cdx_retries == 4
        assert stats.cdx_giveups == 2
        assert stats.backoff_ms == pytest.approx(350.0)
        assert stats.total_retries == 7
        assert stats.total_giveups == 3
        assert stats.retry_giveup_rate == pytest.approx(3 / 10)

    def test_fresh_stats_report_zero_rates(self):
        stats = StudyStats()
        assert stats.fetch_cache_hit_rate == 0.0
        assert stats.cdx_cache_hit_rate == 0.0
        assert stats.retry_giveup_rate == 0.0
        assert stats.total_seconds == 0.0


class TestPhaseTiming:
    def test_phases_record_and_repeat_additively(self):
        stats = StudyStats()
        with stats.phase("probe"):
            pass
        first = stats.phase_seconds["probe"]
        assert first >= 0.0
        with stats.phase("probe"):
            pass
        assert stats.phase_seconds["probe"] >= first
        assert stats.total_seconds == pytest.approx(
            sum(stats.phase_seconds.values())
        )

    def test_phase_records_even_when_body_raises(self):
        stats = StudyStats()
        with pytest.raises(RuntimeError):
            with stats.phase("doomed"):
                raise RuntimeError("boom")
        assert "doomed" in stats.phase_seconds

    def test_phase_order_is_execution_order_not_alphabetical(self):
        stats = StudyStats()
        for name in ("temporal", "spatial", "alpha"):
            with stats.phase(name):
                pass
        assert list(stats.phase_seconds) == ["temporal", "spatial", "alpha"]

    def test_traced_phase_span_carries_the_exact_seconds(self):
        stats = StudyStats()
        tracer = Tracer()
        with stats.phase("probe+census", tracer=tracer):
            pass
        with stats.phase("probe+census", tracer=tracer):
            pass
        with stats.phase("soft404", tracer=tracer):
            pass
        # Not approx: the phase writes the same measured float to the
        # counter and the span, so a trace report reconstructs the
        # phase table identically.
        assert phase_totals(tracer.spans) == stats.phase_seconds
        assert all(s.kind == "phase" for s in tracer.spans)


class TestShardWall:
    def test_folds_min_max_total_and_count(self):
        stats = StudyStats()
        assert stats.shard_wall_count == 0
        for seconds in (2.0, 0.5, 1.0):
            stats.add_shard_wall(seconds)
        assert stats.shard_wall_count == 3
        assert stats.shard_wall_min == 0.5
        assert stats.shard_wall_max == 2.0
        assert stats.shard_wall_total == pytest.approx(3.5)

    def test_first_shard_sets_both_extrema(self):
        stats = StudyStats()
        stats.add_shard_wall(1.25)
        assert stats.shard_wall_min == stats.shard_wall_max == 1.25

    def test_summary_grows_a_shard_wall_clause_only_when_fed(self):
        stats = StudyStats()
        assert "shard wall" not in stats.summary()
        stats.add_shard_wall(0.25)
        stats.add_shard_wall(0.75)
        executor_line = stats.summary().splitlines()[0]
        assert "shard wall min/max/total 0.25/0.75/1.00s" in executor_line
        assert len(stats.summary().splitlines()) == 5  # format unchanged

    def test_worker_registry_merge_adds_counters_exactly(self):
        # The executor's fold path: worker shards buffer private
        # registries (record buckets, wall histograms) that merge into
        # the stats' registry by plain addition.
        stats = StudyStats()
        stats.registry.counter("records.traced").inc(3)
        for n in (2, 5):
            worker = MetricsRegistry()
            worker.counter("records.traced").inc(n)
            worker.histogram("record.wall_s").observe(0.01)
            stats.registry.merge(worker)
        assert stats.registry.counter("records.traced").int_value == 10
        assert stats.registry.histogram("record.wall_s").count == 2

    def test_merge_prefixed_publishes_per_source_families(self):
        # The cluster tier's fold path: each replica registry merges
        # twice — once plain (the fleet rollup) and once under a
        # per-replica prefix — so the rollup is exactly the sum of the
        # prefixed families.
        fleet = MetricsRegistry()
        for rid, lookups in (("s0r0", 3), ("s0r1", 5)):
            replica = MetricsRegistry()
            replica.counter("service.index.lookups").inc(lookups)
            replica.gauge("service.queue.depth").set(lookups)
            replica.histogram("service.latency_ms", (1.0, 10.0)).observe(
                float(lookups)
            )
            fleet.merge(replica)
            fleet.merge_prefixed(replica, f"service.replica.{rid}.")
        assert fleet.counter("service.index.lookups").int_value == 8
        assert (
            fleet.counter("service.replica.s0r0.service.index.lookups").value
            + fleet.counter("service.replica.s0r1.service.index.lookups").value
            == fleet.counter("service.index.lookups").value
        )
        # Gauges keep the incoming value per family; histograms add.
        assert fleet.gauge("service.replica.s0r1.service.queue.depth").value == 5
        assert fleet.histogram("service.latency_ms", (1.0, 10.0)).count == 2
        assert (
            fleet.histogram(
                "service.replica.s0r0.service.latency_ms", (1.0, 10.0)
            ).count
            == 1
        )

    def test_merge_prefixed_rejects_mismatched_histogram_bounds(self):
        fleet = MetricsRegistry()
        fleet.histogram("service.replica.r.lat", (1.0,)).observe(0.5)
        other = MetricsRegistry()
        other.histogram("lat", (2.0,)).observe(0.5)
        with pytest.raises(ValueError, match="bounds"):
            fleet.merge_prefixed(other, "service.replica.r.")

    def test_merge_prefixed_empty_source_is_a_no_op(self):
        fleet = MetricsRegistry()
        fleet.counter("c").inc(2)
        before = fleet.snapshot()
        fleet.merge_prefixed(MetricsRegistry(), "service.replica.r.")
        assert fleet.snapshot() == before

    def test_merge_prefixed_repeated_prefix_folds_additively(self):
        # Folding the same source twice under one prefix adds counters
        # and histograms (and re-takes gauges) — the same contract as
        # merge(), just namespaced.
        fleet = MetricsRegistry()
        source = MetricsRegistry()
        source.counter("lookups").inc(3)
        source.gauge("depth").set(7)
        source.histogram("lat", (1.0,)).observe(0.5)
        fleet.merge_prefixed(source, "r.")
        fleet.merge_prefixed(source, "r.")
        assert fleet.counter("r.lookups").int_value == 6
        assert fleet.gauge("r.depth").value == 7
        assert fleet.histogram("r.lat", (1.0,)).count == 2

    def test_merge_prefixed_nested_prefixes_compose(self):
        # A registry that already holds prefixed families can itself
        # be folded under an outer prefix (e.g. per-cell rollups of
        # per-replica families); names concatenate, values still add.
        replica = MetricsRegistry()
        replica.counter("lookups").inc(4)
        cell = MetricsRegistry()
        cell.merge_prefixed(replica, "replica.s0r0.")
        region = MetricsRegistry()
        region.merge_prefixed(cell, "cell.a.")
        assert (
            region.counter("cell.a.replica.s0r0.lookups").int_value == 4
        )


class TestSummaryFormatting:
    def test_quiet_run_renders_zeroes_not_errors(self):
        text = StudyStats().summary()
        assert "1 worker(s), 1 shard(s)" in text
        assert "phases: none recorded" in text
        assert "cache hit rate 0.0%" in text
        assert (
            "retries: fetch 0 (gave up 0), cdx 0 (gave up 0); "
            "virtual backoff 0 ms" in text
        )

    def test_busy_run_renders_every_counter(self):
        stats = StudyStats(workers=4, shards=8)
        stats.add_fetch_counts(hits=75, misses=25)
        stats.add_cdx_counts(hits=40, misses=60)
        stats.add_retry_counts(
            fetch_retries=12,
            fetch_giveups=1,
            cdx_retries=7,
            cdx_giveups=2,
            backoff_ms=1234.56,
        )
        text = stats.summary()
        assert "4 worker(s), 8 shard(s)" in text
        assert "fetches: 100 issued, 25 reached the network" in text
        assert "cache hit rate 75.0%" in text
        assert "cdx queries: 100 issued, 60 reached the API" in text
        assert "cache hit rate 40.0%" in text
        assert "retries: fetch 12 (gave up 1), cdx 7 (gave up 2)" in text
        assert "virtual backoff 1235 ms" in text

    def test_summary_is_line_per_topic(self):
        lines = StudyStats().summary().splitlines()
        assert len(lines) == 5
        topics = ("executor:", "phases:", "fetches:", "cdx queries:", "retries:")
        assert all(line.startswith(t) for line, t in zip(lines, topics))
