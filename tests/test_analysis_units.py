"""Unit tests for the analysis modules against hand-built webs/archives."""

import pytest

from repro.analysis.archived_soft404 import archived_copy_erroneous
from repro.analysis.copies import CopyCensus, census_link
from repro.analysis.live_status import LiveProbe, classify_links, outcome_counts
from repro.analysis.redirects import RedirectValidator
from repro.analysis.soft404 import Soft404Detector
from repro.analysis.spatial import spatial_analysis
from repro.analysis.temporal import temporal_analysis
from repro.analysis.typos import find_typos
from repro.archive.cdx import CdxApi
from repro.archive.crawler import ArchiveCrawler
from repro.archive.snapshot import Snapshot
from repro.archive.store import SnapshotStore
from repro.clock import SimTime
from repro.dataset.records import LinkRecord
from repro.net.status import Outcome
from repro.rng import Stream
from repro.web.behaviors import MissingPagePolicy, SiteState
from repro.web.page import Page, PageFate
from repro.web.site import Site
from repro.web.world import LiveWeb

T2005 = SimTime.from_ymd(2005, 1, 1)
T2008 = SimTime.from_ymd(2008, 1, 1)
T2010 = SimTime.from_ymd(2010, 1, 1)
T2012 = SimTime.from_ymd(2012, 1, 1)
T2014 = SimTime.from_ymd(2014, 1, 1)
T2016 = SimTime.from_ymd(2016, 1, 1)
T2022 = SimTime.from_ymd(2022, 3, 15)


def record(url, posted=T2010, marked=T2016) -> LinkRecord:
    return LinkRecord(
        url=url,
        article_title="A",
        posted_at=posted,
        marked_at=marked,
        marked_by="InternetArchiveBot",
    )


def soft404_web() -> LiveWeb:
    """Sites with every missing-page behaviour plus a parked domain."""
    web = LiveWeb()
    for host, policy in (
        ("hard.example.com", MissingPagePolicy.HARD_404),
        ("soft.example.com", MissingPagePolicy.SOFT_404),
        ("home.example.com", MissingPagePolicy.REDIRECT_HOME),
        ("login.example.com", MissingPagePolicy.REDIRECT_LOGIN),
    ):
        site = Site(
            hostname=host, seed=host, created_at=T2005, missing_policy=policy
        )
        site.add_page(Page(path_query="/real/live.html", created_at=T2008))
        web.add_site(site)
    parked_original = Site(
        hostname="park.example.com",
        seed="park-orig",
        created_at=T2005,
        dns_dies_at=T2012,
    )
    web.add_site(parked_original)
    web.add_parked_successor(
        parked_original,
        Site(
            hostname="park.example.com",
            seed="park-squat",
            created_at=T2014,
            state=SiteState(parked_from=T2014),
        ),
    )
    return web


class TestLiveStatus:
    def test_outcomes(self, micro_web):
        records = [
            record("http://news.example.com/stays/alive.html"),
            record("http://news.example.com/gone/deleted.html"),
            record("http://unregistered.example.org/x"),
        ]
        probes = classify_links(records, micro_web.fetcher(), T2022)
        assert probes[0].outcome is Outcome.HTTP_200
        assert probes[1].outcome is Outcome.HTTP_404
        assert probes[2].outcome is Outcome.DNS_FAILURE

    def test_counts_cover_all_buckets(self, micro_web):
        probes = classify_links(
            [record("http://news.example.com/stays/alive.html")],
            micro_web.fetcher(),
            T2022,
        )
        counts = outcome_counts(probes)
        assert sum(counts.values()) == 1
        assert len(counts) == 5  # all Figure 4 buckets present

    def test_counts_tolerate_outcomes_outside_figure4(
        self, micro_web, monkeypatch
    ):
        """An outcome missing from FIGURE4_ORDER is counted, not a
        KeyError (regression: a probe from a future taxonomy used to
        crash the whole report)."""
        from repro.analysis import live_status

        probes = classify_links(
            [record("http://news.example.com/stays/alive.html")],
            micro_web.fetcher(),
            T2022,
        )
        reduced = tuple(
            o for o in live_status.FIGURE4_ORDER if o is not Outcome.HTTP_200
        )
        monkeypatch.setattr(live_status, "FIGURE4_ORDER", reduced)
        counts = outcome_counts(probes)
        assert counts[Outcome.HTTP_200] == 1
        assert sum(counts.values()) == 1
        # Presentation-ordered buckets still lead the dict.
        assert list(counts)[: len(reduced)] == list(reduced)


class TestSoft404Detector:
    def _detector(self, web):
        return Soft404Detector(web.fetcher(), Stream(99))

    def test_genuinely_alive_page(self):
        web = soft404_web()
        verdict = self._detector(web).check(
            "http://hard.example.com/real/live.html", T2022
        )
        assert verdict.genuinely_alive

    def test_soft404_detected_by_similarity(self):
        web = soft404_web()
        verdict = self._detector(web).check(
            "http://soft.example.com/real/gone.html", T2022
        )
        assert verdict.broken
        assert verdict.similarity is not None and verdict.similarity > 0.99

    def test_redirect_home_detected_by_same_target(self):
        web = soft404_web()
        verdict = self._detector(web).check(
            "http://home.example.com/real/gone.html", T2022
        )
        assert verdict.broken
        assert "same redirect target" in verdict.reason

    def test_parked_domain_detected(self):
        web = soft404_web()
        verdict = self._detector(web).check(
            "http://park.example.com/anything.html", T2022
        )
        assert verdict.broken

    def test_alive_on_soft404_site_not_flagged(self):
        web = soft404_web()
        verdict = self._detector(web).check(
            "http://soft.example.com/real/live.html", T2022
        )
        assert verdict.genuinely_alive

    def test_alive_behind_redirect_not_flagged(self, micro_web):
        # The fishman-style case: old URL 301s to the new page, which
        # serves real content — distinct from the random sibling's 404.
        verdict = Soft404Detector(micro_web.fetcher(), Stream(1)).check(
            "http://news.example.com/moved/late.html", T2022
        )
        assert verdict.genuinely_alive


class TestCopyCensus:
    def test_split_at_marking(self):
        store = SnapshotStore()
        url = "http://e.com/a/x.html"
        for at, status in ((T2010, 200), (T2014, 404), (SimTime.from_ymd(2018, 1, 1), 404)):
            store.add(
                Snapshot(url=url, captured_at=at, initial_status=status,
                         final_status=status, final_url=url)
            )
        census = census_link(record(url, marked=T2016), CdxApi(store))
        assert len(census.pre_marking) == 2
        assert len(census.post_marking) == 1
        assert census.has_pre_marking_200
        assert not census.has_pre_marking_3xx
        assert census.first_snapshot.captured_at == T2010

    def test_no_copies(self):
        census = census_link(record("http://e.com/a/y.html"), CdxApi(SnapshotStore()))
        assert not census.has_any_copy
        assert census.first_snapshot is None
        assert census.first_post_marking is None


class TestRedirectValidator:
    def _store_with_redirects(self, same_target: bool) -> SnapshotStore:
        store = SnapshotStore()
        target = "http://e.com/" if same_target else "http://e.com/new/a.html"
        store.add(
            Snapshot(
                url="http://e.com/dir/a.html",
                captured_at=T2014,
                initial_status=302,
                redirect_location=target,
                final_status=200,
                final_url=target,
            )
        )
        sibling_target = "http://e.com/" if same_target else "http://e.com/new/b.html"
        store.add(
            Snapshot(
                url="http://e.com/dir/b.html",
                captured_at=T2014.plus_days(30),
                initial_status=302,
                redirect_location=sibling_target,
                final_status=200,
                final_url=sibling_target,
            )
        )
        return store

    def test_unique_target_valid(self):
        store = self._store_with_redirects(same_target=False)
        validator = RedirectValidator(CdxApi(store))
        snapshot = store.snapshots("http://e.com/dir/a.html")[0]
        verdict = validator.validate(snapshot)
        assert verdict.valid
        assert verdict.siblings_compared == 1

    def test_shared_target_invalid(self):
        store = SnapshotStore()
        shared = "http://e.com/new/landing.html"
        for leaf in ("a", "b"):
            store.add(
                Snapshot(
                    url=f"http://e.com/dir/{leaf}.html",
                    captured_at=T2014,
                    initial_status=302,
                    redirect_location=shared,
                    final_status=200,
                    final_url=shared,
                )
            )
        validator = RedirectValidator(CdxApi(store))
        snapshot = store.snapshots("http://e.com/dir/a.html")[0]
        assert not validator.validate(snapshot).valid

    def test_root_target_always_invalid(self):
        store = self._store_with_redirects(same_target=True)
        validator = RedirectValidator(CdxApi(store))
        snapshot = store.snapshots("http://e.com/dir/a.html")[0]
        verdict = validator.validate(snapshot)
        assert not verdict.valid
        assert "root" in verdict.reason

    def test_login_target_invalid(self):
        store = SnapshotStore()
        store.add(
            Snapshot(
                url="http://e.com/dir/a.html",
                captured_at=T2014,
                initial_status=302,
                redirect_location="http://e.com/login",
                final_status=200,
                final_url="http://e.com/login",
            )
        )
        validator = RedirectValidator(CdxApi(store))
        verdict = validator.validate(store.snapshots("http://e.com/dir/a.html")[0])
        assert not verdict.valid and "login" in verdict.reason

    def test_sibling_outside_window_ignored(self):
        store = SnapshotStore()
        shared = "http://e.com/new/landing.html"
        store.add(
            Snapshot(
                url="http://e.com/dir/a.html",
                captured_at=T2014,
                initial_status=302,
                redirect_location=shared,
                final_status=200,
                final_url=shared,
            )
        )
        store.add(
            Snapshot(
                url="http://e.com/dir/b.html",
                captured_at=T2014.plus_days(2000),  # far outside 90 days
                initial_status=302,
                redirect_location=shared,
                final_status=200,
                final_url=shared,
            )
        )
        validator = RedirectValidator(CdxApi(store))
        verdict = validator.validate(store.snapshots("http://e.com/dir/a.html")[0])
        assert verdict.valid  # no contemporaneous duplication evidence

    def test_non_redirect_snapshot_invalid(self):
        store = SnapshotStore()
        snap = Snapshot(
            url="http://e.com/x", captured_at=T2014, initial_status=200,
            final_status=200, final_url="http://e.com/x",
        )
        store.add(snap)
        assert not RedirectValidator(CdxApi(store)).validate(snap).valid

    def test_find_valid_redirect_copy(self):
        store = self._store_with_redirects(same_target=False)
        validator = RedirectValidator(CdxApi(store))
        found = validator.find_valid_redirect_copy("http://e.com/dir/a.html")
        assert found is not None
        assert found.redirect_location == "http://e.com/new/a.html"

    def test_parameter_validation(self):
        store = SnapshotStore()
        with pytest.raises(ValueError):
            RedirectValidator(CdxApi(store), window_days=0)
        with pytest.raises(ValueError):
            RedirectValidator(CdxApi(store), max_siblings=-1)


class TestArchivedSoft404:
    def test_hard_404_copy_erroneous(self):
        store = SnapshotStore()
        snap = Snapshot(
            url="http://e.com/x", captured_at=T2014, initial_status=404,
            final_status=404, final_url="http://e.com/x",
        )
        store.add(snap)
        assert archived_copy_erroneous(snap, CdxApi(store))

    def test_genuine_200_copy_not_erroneous(self, micro_web):
        store = SnapshotStore()
        crawler = ArchiveCrawler(micro_web.fetcher(), store)
        snap = crawler.capture("http://news.example.com/stays/alive.html", T2010)
        crawler.capture("http://news.example.com/new/late-target.html", T2014)
        assert not archived_copy_erroneous(snap, CdxApi(store))

    def test_soft404_copy_detected_via_boilerplate_twin(self):
        web = LiveWeb()
        site = Site(
            hostname="s.example.com",
            seed="s404",
            created_at=T2005,
            missing_policy=MissingPagePolicy.SOFT_404,
        )
        web.add_site(site)
        store = SnapshotStore()
        crawler = ArchiveCrawler(web.fetcher(), store)
        snap_a = crawler.capture("http://s.example.com/gone/a.html", T2014)
        crawler.capture("http://s.example.com/gone/b.html", T2014.plus_days(10))
        assert snap_a.initial_status == 200
        assert archived_copy_erroneous(snap_a, CdxApi(store))


class TestTemporalAnalysis:
    def _census(self, url, captures, posted=T2010, marked=T2016):
        store = SnapshotStore()
        for at, status in captures:
            store.add(
                Snapshot(url=url, captured_at=at, initial_status=status,
                         final_status=status, final_url=url)
            )
        return census_link(record(url, posted=posted, marked=marked), CdxApi(store)), CdxApi(store)

    def test_gap_measured(self):
        census, cdx = self._census(
            "http://e.com/a", [(T2012, 404)], posted=T2010
        )
        report = temporal_analysis([census], cdx)
        (rec,) = report.records
        assert not rec.pre_posting_copy
        assert rec.gap_days == pytest.approx(T2010.days_until(T2012))

    def test_pre_posting_copy_separated(self):
        census, cdx = self._census(
            "http://e.com/a", [(T2008, 404)], posted=T2010
        )
        report = temporal_analysis([census], cdx)
        assert len(report.with_pre_posting_copy) == 1
        assert report.gap_population == []

    def test_same_day_erroneous(self):
        census, cdx = self._census(
            "http://e.com/a", [(T2010.plus_days(0.5), 404)], posted=T2010
        )
        report = temporal_analysis([census], cdx)
        (rec,) = report.same_day
        assert rec.first_copy_erroneous
        assert report.same_day_erroneous == [rec]

    def test_no_copy_links_skipped(self):
        census, cdx = self._census("http://e.com/a", [])
        report = temporal_analysis([census], cdx)
        assert report.records == []


class TestSpatialAnalysis:
    def test_neighbor_counts(self):
        store = SnapshotStore()
        for leaf in ("a", "b"):
            store.add(
                Snapshot(
                    url=f"http://e.com/dir/{leaf}.html",
                    captured_at=T2012,
                    initial_status=200,
                    final_status=200,
                    final_url=f"http://e.com/dir/{leaf}.html",
                )
            )
        store.add(
            Snapshot(
                url="http://e.com/other/c.html",
                captured_at=T2012,
                initial_status=404,
                final_status=404,
                final_url="http://e.com/other/c.html",
            )
        )
        report = spatial_analysis(
            [record("http://e.com/dir/never.html")], CdxApi(store)
        )
        (rec,) = report.records
        assert rec.directory_neighbors == 2
        assert rec.hostname_neighbors == 2  # the 404-only URL doesn't count
        assert not rec.directory_gap and not rec.hostname_gap

    def test_gaps(self):
        report = spatial_analysis(
            [record("http://lonely.example.org/x.html")], CdxApi(SnapshotStore())
        )
        (rec,) = report.records
        assert rec.directory_gap and rec.hostname_gap

    def test_query_param_counting(self):
        report = spatial_analysis(
            [record("http://e.com/x.asp?a=1&b=2&c=3&d=4")], CdxApi(SnapshotStore())
        )
        assert report.records[0].query_param_count == 4
        assert len(report.query_heavy) == 1


class TestTypoDetection:
    def _cdx_with(self, *urls):
        store = SnapshotStore()
        for url in urls:
            store.add(
                Snapshot(url=url, captured_at=T2012, initial_status=200,
                         final_status=200, final_url=url)
            )
        return CdxApi(store)

    def test_unique_distance_one_found(self):
        cdx = self._cdx_with("http://e.com/news/story.html")
        report = find_typos([record("http://e.com/news/storx.html")], cdx)
        assert len(report) == 1
        assert report.findings[0].corrected_url == "http://e.com/news/story.html"

    def test_ambiguous_family_skipped(self):
        cdx = self._cdx_with(
            "http://e.com/page1.html", "http://e.com/page2.html"
        )
        report = find_typos([record("http://e.com/page9.html")], cdx)
        assert len(report) == 0
        assert report.examined == 1

    def test_different_domain_not_considered(self):
        cdx = self._cdx_with("http://other.org/news/story.html")
        report = find_typos([record("http://e.com/news/storx.html")], cdx)
        assert len(report) == 0

    def test_subdomain_of_same_domain_considered(self):
        cdx = self._cdx_with("http://www.e.com/a/story.html")
        report = find_typos([record("http://www.e.com/a/storx.html")], cdx)
        assert len(report) == 1
