"""Tests for repro.obs: tracing, metrics, provenance, and trace views.

Two properties carry the whole layer and are pinned here end to end:

1. **Inertness** — tracing a study run must not change the study. A
   traced report equals an untraced one field for field.
2. **Fold exactness** — serial and parallel traced runs agree on every
   shape-independent aggregate metric (issued counts, record buckets)
   and on the byte-level report, even though their span trees differ
   in ids and interleaving.

The unit layers (span round-trips, histogram bucketing, registry
merges, trace views) are tested on synthetic data so failures localize.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.analysis.study import Study, StudyReport
from repro.archive.availability import AvailabilityApi, AvailabilityPolicy
from repro.clock import SimTime
from repro.dataset.worldgen import WorldConfig, generate_world
from repro.exec import StudyExecutor
from repro.exec.worker import run_record_stage
from repro.iabot.archive_client import IABotArchiveClient
from repro.net.fetch import Fetcher
from repro.obs import (
    Counter,
    Histogram,
    MetricsRegistry,
    RecordProvenance,
    Span,
    Tracer,
    backend_snapshot,
    bucket_attribution,
    kind_counts,
    phase_latency_histograms,
    phase_totals,
    read_jsonl,
    top_records,
)


@pytest.fixture(scope="module")
def tiny_world():
    """A very small generated world for end-to-end tracing tests."""
    return generate_world(WorldConfig(n_links=260, target_sample=200, seed=7))


def _fresh_study(world) -> Study:
    return Study.from_world(world)


def assert_reports_identical(a: StudyReport, b: StudyReport) -> None:
    # stats (wall times) is skipped; outcomes compare with per-record
    # provenance stripped — provenance carries wall costs and span ids,
    # which vary across runs, but the measurement fields must not.
    for f in dataclasses.fields(StudyReport):
        if f.name == "stats":
            continue
        if f.name == "outcomes":
            assert _sans_provenance(a.outcomes) == _sans_provenance(
                b.outcomes
            ), f.name
            continue
        assert getattr(a, f.name) == getattr(b, f.name), f.name


def _sans_provenance(outcomes):
    if outcomes is None:
        return None
    return tuple(
        dataclasses.replace(outcome, provenance=None) for outcome in outcomes
    )


# -- spans and the tracer ----------------------------------------------------------


class TestTracer:
    def test_nesting_sets_parentage(self):
        tracer = Tracer()
        with tracer.span("outer", kind="phase") as outer:
            assert tracer.current_id == outer.span_id
            with tracer.span("inner", kind="record") as inner:
                assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert tracer.current_id is None
        # Completion order: children land before their parents.
        assert [s.name for s in tracer.spans] == ["inner", "outer"]
        assert outer.duration_s >= inner.duration_s >= 0.0

    def test_sibling_spans_share_a_parent(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == b.parent_id == parent.span_id

    def test_ids_carry_the_prefix(self):
        tracer = Tracer(prefix="w40.")
        with tracer.span("shard"):
            pass
        assert tracer.spans[0].span_id == "w40.1"

    def test_adopt_reparents_roots_only(self):
        worker = Tracer(prefix="w0.")
        with worker.span("shard") as shard:
            with worker.span("record") as record:
                pass
        parent = Tracer()
        with parent.span("study") as study:
            parent.adopt(worker.spans)
        assert shard.parent_id == study.span_id
        assert record.parent_id == shard.span_id  # internal edge untouched
        ids = {s.span_id for s in parent.spans}
        assert len(ids) == 3  # prefixing kept worker ids collision-free

    def test_record_span_keeps_the_given_duration(self):
        tracer = Tracer()
        span = tracer.record_span("probe+census", "phase", duration_s=1.25)
        assert span.duration_s == 1.25
        assert span in tracer.spans

    def test_jsonl_round_trip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("study", kind="study") as study:
            with tracer.span(
                "record", kind="record", sim=SimTime(days=12.5), url="http://x/"
            ) as record:
                record.add_virtual_ms(40.0)
                record.set(bucket="404")
        path = tmp_path / "trace.jsonl"
        assert tracer.write_jsonl(path) == 2
        loaded = read_jsonl(path)
        assert [s.span_id for s in loaded] == [s.span_id for s in tracer.spans]
        rec = loaded[0]
        assert rec.name == "record"
        assert rec.parent_id == study.span_id
        assert rec.sim_days == 12.5
        assert rec.virtual_ms == 40.0
        assert rec.attrs == {"url": "http://x/", "bucket": "404"}
        assert rec.duration_s == pytest.approx(record.duration_s)
        # Appending a second tracer's spans accumulates, never truncates.
        other = Tracer(prefix="b.")
        with other.span("extra"):
            pass
        other.write_jsonl(path)
        assert len(read_jsonl(path)) == 3


# -- metrics -----------------------------------------------------------------------


class TestMetrics:
    def test_counter_adds_and_exposes_int_view(self):
        counter = Counter("n")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        assert counter.int_value == 3

    def test_histogram_buckets_honor_inclusive_bounds(self):
        histogram = Histogram("h", bounds=(0.001, 0.01, 0.1))
        for value in (0.0005, 0.001, 0.005, 0.1, 5.0):
            histogram.observe(value)
        # bucket i counts values <= bounds[i]; the last is overflow.
        assert histogram.counts == [2, 1, 1, 1]
        assert histogram.count == 5
        assert histogram.mean == pytest.approx(sum((0.0005, 0.001, 0.005, 0.1, 5.0)) / 5)

    def test_histogram_merge_is_bucketwise_exact(self):
        a = Histogram("h", bounds=(1.0, 2.0))
        b = Histogram("h", bounds=(1.0, 2.0))
        for v in (0.5, 1.5, 3.0):
            a.observe(v)
        for v in (0.1, 9.9):
            b.observe(v)
        a.merge(b)
        assert a.counts == [2, 1, 2]
        assert a.count == 5
        assert a.sum == pytest.approx(0.5 + 1.5 + 3.0 + 0.1 + 9.9)

    def test_histogram_merge_rejects_foreign_bounds(self):
        a = Histogram("h", bounds=(1.0,))
        b = Histogram("h", bounds=(2.0,))
        with pytest.raises(ValueError, match="bounds"):
            a.merge(b)

    def test_registry_merge_folds_every_instrument(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.counter("records").inc(10)
        worker.counter("records").inc(5)
        worker.counter("only.worker").inc(2)
        parent.gauge("workers").set(1)
        worker.gauge("workers").set(3)
        parent.histogram("wall", bounds=(1.0,)).observe(0.5)
        worker.histogram("wall", bounds=(1.0,)).observe(2.0)
        parent.merge(worker)
        assert parent.counter("records").value == 15
        assert parent.counter("only.worker").value == 2
        assert parent.gauge("workers").value == 3  # incoming wins
        assert parent.histogram("wall").counts == [1, 1]

    def test_counters_view_filters_and_orders(self):
        registry = MetricsRegistry()
        registry.counter("phase.seconds/zulu").inc(1.0)
        registry.counter("phase.seconds/alpha").inc(2.0)
        registry.counter("other").inc(9.0)
        assert list(registry.counters("phase.seconds/", sort=False)) == [
            "phase.seconds/zulu",
            "phase.seconds/alpha",
        ]
        assert list(registry.counters("phase.seconds/")) == [
            "phase.seconds/alpha",
            "phase.seconds/zulu",
        ]

    def test_snapshot_is_json_plain(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(7)
        registry.histogram("h", bounds=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        assert snap["counters"] == {"c": 2.0}
        assert snap["gauges"] == {"g": 7.0}
        assert snap["histograms"]["h"] == {
            "bounds": [1.0],
            "counts": [1, 0],
            "count": 1,
            "sum": 0.5,
        }


# -- provenance --------------------------------------------------------------------


class _FakeBackend:
    def __init__(self, fetch_count=0, misses=None, query_count=0):
        self.fetch_count = fetch_count
        self.query_count = query_count
        if misses is not None:
            self.misses = misses


class TestProvenance:
    def test_snapshot_reads_counters_duck_typed(self):
        snap = backend_snapshot(
            _FakeBackend(fetch_count=10, misses=4),
            _FakeBackend(query_count=6),
        )
        assert snap.fetches == 10
        assert snap.backend_fetches == 4  # misses refine "reached backend"
        assert snap.cdx_queries == 6
        assert snap.backend_cdx_queries == 6  # no memo: issued == backend

    def test_counterless_backends_read_as_zero(self):
        snap = backend_snapshot(object(), object())
        assert snap == backend_snapshot(object(), object())
        assert snap.fetches == 0 and snap.cdx_queries == 0

    def test_from_deltas_subtracts(self):
        before = backend_snapshot(
            _FakeBackend(fetch_count=10, misses=4), _FakeBackend(query_count=6)
        )
        after = backend_snapshot(
            _FakeBackend(fetch_count=13, misses=5), _FakeBackend(query_count=9)
        )
        prov = RecordProvenance.from_deltas(
            url="http://x/", bucket="404", before=before, after=after,
            span_id="7", wall_seconds=0.25,
        )
        assert prov.fetches == 3
        assert prov.backend_fetches == 1
        assert prov.cdx_queries == 3
        assert prov.span_id == "7"
        assert prov.wall_seconds == 0.25


# -- trace views -------------------------------------------------------------------


def _span(span_id, parent, name, kind, dur, **attrs):
    return Span(
        span_id=span_id, parent_id=parent, name=name, kind=kind,
        wall_start=0.0, duration_s=dur, attrs=attrs,
    )


class TestTraceViews:
    def _trace(self):
        return [
            _span("1", None, "probe+census", "phase", 2.0),
            _span("2", None, "probe+census", "phase", 1.0),
            _span("3", None, "soft404", "phase", 0.5),
            _span("4", "1", "shard", "shard", 1.9),
            _span("5", "4", "record", "record", 0.4,
                  url="http://a/", bucket="404", fetches=1, cdx_queries=2),
            _span("6", "4", "record", "record", 0.4,
                  url="http://b/", bucket="404", fetches=1, cdx_queries=3),
            _span("7", "4", "record", "record", 1.1,
                  url="http://c/", bucket="DNS Failure", fetches=2, retries=1),
            _span("8", "5", "fetch", "backend.fetch", 0.3, url="http://a/"),
            _span("9", None, "fetch", "backend.fetch", 0.2, url="http://z/"),
        ]

    def test_phase_totals_add_repeated_names(self):
        totals = phase_totals(self._trace())
        assert totals == {"probe+census": 3.0, "soft404": 0.5}

    def test_top_records_ranks_and_breaks_ties_on_url(self):
        top = top_records(self._trace(), n=2)
        assert [c.url for c in top] == ["http://c/", "http://a/"]
        assert top[0].retries == 1
        assert top[1].cdx_queries == 2
        assert len(top_records(self._trace(), n=100)) == 3

    def test_bucket_attribution_aggregates_costs(self):
        buckets = bucket_attribution(self._trace())
        assert list(buckets) == ["404", "DNS Failure"]  # by record count
        assert buckets["404"].records == 2
        assert buckets["404"].fetches == 2
        assert buckets["404"].cdx_queries == 5
        assert buckets["404"].wall_seconds == pytest.approx(0.8)
        assert buckets["DNS Failure"].retries == 1

    def test_latency_histograms_attribute_to_enclosing_phase(self):
        histograms = phase_latency_histograms(
            self._trace(), bounds=(0.5, 1.0)
        )
        # Records 5/6/7 and nested backend fetch 8 sit under phase 1;
        # orphan backend fetch 9 has no phase ancestor.
        assert set(histograms) == {"probe+census", "(no phase)"}
        assert histograms["probe+census"].count == 4
        assert histograms["probe+census"].counts == [3, 0, 1]
        assert histograms["(no phase)"].count == 1

    def test_kind_counts(self):
        assert kind_counts(self._trace()) == {
            "backend.fetch": 2, "phase": 3, "record": 3, "shard": 1,
        }


# -- backend span hooks ------------------------------------------------------------


class TestBackendTracing:
    def test_fetcher_emits_net_fetch_spans(self, tiny_world):
        tracer = Tracer()
        traced = Fetcher(tiny_world.web.dns, tiny_world.web, tracer=tracer)
        study = _fresh_study(tiny_world)
        result = traced.fetch(study.records[0].url, study.at)
        plain = tiny_world.fetcher().fetch(study.records[0].url, study.at)
        assert result == plain  # tracing never changes the fetch
        (span,) = tracer.spans
        assert span.kind == "net.fetch"
        assert span.attrs["outcome"] == result.outcome.value
        assert span.attrs["hops"] == len(result.chain)
        assert span.sim_days == study.at.days

    def test_iabot_client_emits_availability_spans(self, tiny_world):
        study = _fresh_study(tiny_world)
        posted = study.records[0].posted_at
        url = study.records[0].url
        api = AvailabilityApi(
            tiny_world.store, AvailabilityPolicy(seed="obs-test")
        )
        tracer = Tracer()
        traced = IABotArchiveClient(api, timeout_ms=None, tracer=tracer)
        plain = IABotArchiveClient(
            AvailabilityApi(
                tiny_world.store, AvailabilityPolicy(seed="obs-test")
            ),
            timeout_ms=None,
        )
        assert traced.find_copy(url, posted) == plain.find_copy(url, posted)
        (span,) = tracer.spans
        assert span.kind == "availability"
        assert span.attrs["resolved"] in {"found", "none"}
        assert span.virtual_ms > 0.0  # the API's latency draw is booked


# -- the traced study, end to end --------------------------------------------------


def _deterministic_counters(stats) -> dict[str, float]:
    """The aggregate counters serial and parallel runs must agree on."""
    counters = stats.registry.counters()
    return {
        name: value
        for name, value in counters.items()
        if name.startswith(("fetch.issued", "cdx.issued", "records."))
    }


class TestTracedStudy:
    def test_tracing_is_inert(self, tiny_world):
        untraced = _fresh_study(tiny_world).run()
        traced = _fresh_study(tiny_world).run(tracer=Tracer())
        assert untraced == traced
        assert_reports_identical(untraced, traced)

    def test_serial_and_parallel_traces_agree_on_aggregates(self, tiny_world):
        serial_tracer, parallel_tracer = Tracer(), Tracer()
        serial = _fresh_study(tiny_world).run(tracer=serial_tracer)
        parallel = _fresh_study(tiny_world).run(
            executor=StudyExecutor(workers=3), tracer=parallel_tracer
        )
        assert serial == parallel
        assert_reports_identical(serial, parallel)
        assert _deterministic_counters(serial.stats) == _deterministic_counters(
            parallel.stats
        )
        # Same records traced on both sides, sharded or not.
        serial_records = [s for s in serial_tracer.spans if s.kind == "record"]
        parallel_records = [
            s for s in parallel_tracer.spans if s.kind == "record"
        ]
        assert len(serial_records) == len(parallel_records) == len(serial.probes)
        assert sorted(s.attrs["url"] for s in serial_records) == sorted(
            s.attrs["url"] for s in parallel_records
        )
        assert sorted(s.attrs["bucket"] for s in serial_records) == sorted(
            s.attrs["bucket"] for s in parallel_records
        )

    def test_span_tree_shape_and_integrity(self, tiny_world):
        tracer = Tracer()
        report = _fresh_study(tiny_world).run(
            executor=StudyExecutor(workers=3), tracer=tracer
        )
        kinds = kind_counts(tracer.spans)
        assert kinds["study"] == 1
        assert kinds["phase"] == 5
        assert kinds["shard"] == report.stats.shards == 3
        assert kinds["record"] == len(report.probes)
        # Every parent id resolves inside the trace: adoption grafted
        # the worker spans onto the parent tree without dangling edges.
        ids = {s.span_id for s in tracer.spans}
        assert len(ids) == len(tracer.spans)
        for span in tracer.spans:
            assert span.parent_id is None or span.parent_id in ids
        (study_span,) = (s for s in tracer.spans if s.kind == "study")
        assert study_span.parent_id is None
        for span in tracer.spans:
            if span.kind == "phase":
                assert span.parent_id == study_span.span_id
        for span in tracer.spans:
            if span.kind == "shard":
                assert span.span_id.startswith("w")  # worker-buffered

    def test_trace_phase_totals_match_stats_exactly(self, tiny_world):
        tracer = Tracer()
        report = _fresh_study(tiny_world).run(tracer=tracer)
        assert phase_totals(tracer.spans) == report.stats.phase_seconds

    def test_provenance_rides_every_outcome(self, tiny_world):
        study = _fresh_study(tiny_world)
        executor = StudyExecutor(workers=1)
        tracer = Tracer()
        stage = executor.execute(
            study.records, study.fetcher, study.cdx, study.at, tracer=tracer
        )
        for outcome in stage.outcomes:
            prov = outcome.provenance
            assert prov is not None
            assert prov.url == outcome.record.url
            assert prov.bucket == outcome.probe.result.outcome.value
            assert prov.fetches >= 1  # at least the live probe itself
            assert prov.cdx_queries >= 1  # at least the census
            assert prov.span_id is not None
        span_ids = {s.span_id for s in tracer.spans}
        assert all(
            o.provenance.span_id in span_ids for o in stage.outcomes
        )

    def test_untraced_stage_still_attaches_provenance(self, tiny_world):
        study = _fresh_study(tiny_world)
        outcome = run_record_stage(
            study.records[0], study.fetcher, study.cdx, study.at
        )
        assert outcome.provenance is not None
        assert outcome.provenance.span_id is None
        assert outcome.provenance.wall_seconds > 0.0

    def test_trace_report_script_renders_a_real_trace(self, tiny_world, tmp_path):
        import importlib.util
        import io
        import sys as _sys
        from pathlib import Path

        tracer = Tracer()
        _fresh_study(tiny_world).run(tracer=tracer)
        path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(path)

        script = (
            Path(__file__).resolve().parent.parent
            / "scripts"
            / "trace_report.py"
        )
        spec = importlib.util.spec_from_file_location("trace_report", script)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        captured = io.StringIO()
        stdout, _sys.stdout = _sys.stdout, captured
        try:
            code = module.main([str(path), "--top", "3"])
        finally:
            _sys.stdout = stdout
        text = captured.getvalue()
        assert code == 0
        assert "spans by kind" in text
        assert "probe+census" in text
        assert "attribution by Figure-4 bucket" in text
        assert "most expensive URLs" in text
