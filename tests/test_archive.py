"""Tests for repro.archive — snapshots, store, availability, CDX, crawlers."""

import pytest

from repro.archive.availability import AvailabilityApi, AvailabilityPolicy
from repro.archive.cdx import CdxApi, CdxQuery, MatchType
from repro.archive.crawler import (
    ArchiveCrawler,
    BodySketcher,
    CrawlPolicy,
    OrganicCrawlPlanner,
    TriggeredArchiver,
    TriggerEra,
    default_trigger_eras,
)
from repro.archive.snapshot import Snapshot
from repro.archive.store import SnapshotStore
from repro.clock import SimTime
from repro.errors import ArchiveTimeout
from repro.rng import Stream

T2008 = SimTime.from_ymd(2008, 1, 1)
T2010 = SimTime.from_ymd(2010, 1, 1)
T2012 = SimTime.from_ymd(2012, 1, 1)
T2014 = SimTime.from_ymd(2014, 1, 1)
T2016 = SimTime.from_ymd(2016, 1, 1)
T2022 = SimTime.from_ymd(2022, 3, 15)

URL = "http://site.example.com/news/story.html"
SIBLING = "http://site.example.com/news/other.html"
ELSEWHERE = "http://site.example.com/sports/match.html"


def snap(url=URL, at=T2010, status=200, location=None, final=None, final_url=None):
    return Snapshot(
        url=url,
        captured_at=at,
        initial_status=status,
        redirect_location=location,
        final_status=final if final is not None else status,
        final_url=final_url or url,
        sketch=(1, 2, 3),
    )


class TestSnapshot:
    def test_redirect_requires_location(self):
        with pytest.raises(ValueError):
            Snapshot(url=URL, captured_at=T2010, initial_status=302)

    def test_initial_ok(self):
        assert snap(status=200).initial_ok
        assert not snap(status=404).initial_ok

    def test_initial_redirected(self):
        assert snap(status=302, location="http://x.com/").initial_redirected

    def test_failed(self):
        failed = Snapshot(url=URL, captured_at=T2010, initial_status=None)
        assert failed.failed
        assert failed.looks_erroneous_by_status

    def test_erroneous_by_status(self):
        assert snap(status=404).looks_erroneous_by_status
        assert snap(status=503).looks_erroneous_by_status
        assert not snap(status=200).looks_erroneous_by_status
        # 3xx landing on a 200 is not erroneous by status alone.
        good_redirect = snap(status=301, location="http://x.com/a", final=200)
        assert not good_redirect.looks_erroneous_by_status
        bad_redirect = snap(status=301, location="http://x.com/a", final=404)
        assert bad_redirect.looks_erroneous_by_status

    def test_describe(self):
        assert "302 ->" in snap(status=302, location="http://x.com/").describe()


class TestSnapshotStore:
    def _store(self) -> SnapshotStore:
        store = SnapshotStore()
        store.add(snap(at=T2012, status=404))
        store.add(snap(at=T2008, status=200))
        store.add(snap(at=T2016, status=200))
        store.add(snap(url=SIBLING, at=T2010, status=200))
        store.add(snap(url=ELSEWHERE, at=T2010, status=200))
        return store

    def test_snapshots_sorted_by_time(self):
        rows = self._store().snapshots(URL)
        times = [r.captured_at.days for r in rows]
        assert times == sorted(times)

    def test_counts(self):
        store = self._store()
        assert len(store) == 5
        assert store.url_count() == 3

    def test_first_snapshot(self):
        assert self._store().first_snapshot(URL).captured_at == T2008

    def test_before_after_split(self):
        store = self._store()
        assert len(store.snapshots_before(URL, T2012)) == 1
        assert len(store.snapshots_after(URL, T2012)) == 2

    def test_closest_to(self):
        store = self._store()
        chosen = store.closest_to(URL, T2010)
        assert chosen.captured_at in (T2008, T2012)

    def test_closest_with_predicate(self):
        store = self._store()
        chosen = store.closest_to(URL, T2010, predicate=lambda s: s.initial_ok)
        assert chosen.captured_at == T2008

    def test_closest_no_match(self):
        store = self._store()
        assert store.closest_to("http://nowhere.com/x", T2010) is None

    def test_directory_index(self):
        urls = self._store().urls_in_directory("http://site.example.com/news/")
        assert set(urls) == {URL, SIBLING}

    def test_host_index(self):
        urls = self._store().urls_on_host("site.example.com")
        assert len(urls) == 3

    def test_domain_index(self):
        urls = self._store().urls_in_domain("example.com")
        assert len(urls) == 3

    def test_failed_capture_hidden_by_default(self):
        store = SnapshotStore()
        store.add(Snapshot(url=URL, captured_at=T2010, initial_status=None))
        assert store.snapshots(URL) == ()
        assert not store.has_any(URL)
        assert len(store.snapshots(URL, include_failed=True)) == 1


class TestAvailabilityApi:
    def _api(self, tail_ms=2000.0) -> AvailabilityApi:
        store = SnapshotStore()
        store.add(snap(at=T2008, status=200))
        store.add(snap(at=T2012, status=404))
        store.add(snap(at=T2016, status=200))
        return AvailabilityApi(
            store, AvailabilityPolicy(tail_scale_ms=tail_ms, seed="test")
        )

    def test_patient_lookup_finds_closest_200(self):
        api = self._api()
        result = api.lookup(URL, around=T2014)
        assert result.snapshot is not None
        assert result.snapshot.captured_at == T2016  # closest initial-200

    def test_404_copies_never_returned(self):
        api = self._api()
        result = api.lookup(URL, around=T2012)
        assert result.snapshot.initial_status == 200

    def test_before_restriction(self):
        api = self._api()
        result = api.lookup(URL, around=T2014, before=T2010)
        assert result.snapshot.captured_at == T2008

    def test_timeout_raises(self):
        api = self._api()
        # Find a URL whose first-attempt latency exceeds 1 ms.
        with pytest.raises(ArchiveTimeout):
            for i in range(50):
                api.lookup(f"http://u{i}.com/x", around=T2014, timeout_ms=1.0)
        assert api.timeout_count >= 1

    def test_latency_deterministic_per_attempt(self):
        policy = AvailabilityPolicy(seed="p")
        assert policy.latency_ms("u", 0) == policy.latency_ms("u", 0)
        assert policy.latency_ms("u", 0) != policy.latency_ms("u", 1)

    def test_timeout_probability_math(self):
        policy = AvailabilityPolicy(base_ms=50.0, tail_scale_ms=2000.0)
        p = policy.timeout_probability(5000.0)
        assert 0.05 < p < 0.12
        assert policy.timeout_probability(10.0) == 1.0

    def test_empirical_timeout_rate_matches_model(self):
        policy = AvailabilityPolicy(seed="emp")
        timeouts = sum(
            1
            for i in range(4000)
            if policy.latency_ms(f"http://u{i}.com/", 0) > 5000.0
        )
        expected = policy.timeout_probability(5000.0)
        assert abs(timeouts / 4000 - expected) < 0.02

    def test_lookup_counter(self):
        api = self._api()
        api.lookup(URL, around=T2014)
        assert api.lookup_count == 1


class TestCdxApi:
    def _cdx(self) -> CdxApi:
        store = SnapshotStore()
        store.add(snap(at=T2008, status=200))
        store.add(snap(at=T2012, status=302, location="http://site.example.com/"))
        store.add(snap(url=SIBLING, at=T2010, status=200))
        store.add(snap(url=ELSEWHERE, at=T2014, status=404))
        return CdxApi(store)

    def test_exact_query(self):
        rows = self._cdx().query(CdxQuery(url=URL))
        assert len(rows) == 2

    def test_status_filter(self):
        rows = self._cdx().query(CdxQuery(url=URL, initial_status=200))
        assert len(rows) == 1

    def test_time_bounds(self):
        rows = self._cdx().query(
            CdxQuery(url=URL, from_time=T2010, to_time=T2014)
        )
        assert len(rows) == 1
        assert rows[0].initial_status == 302

    def test_directory_scope(self):
        rows = self._cdx().query(
            CdxQuery(url=URL, match_type=MatchType.DIRECTORY)
        )
        assert {row.url for row in rows} == {URL, SIBLING}

    def test_directory_exclude_self(self):
        rows = self._cdx().query(
            CdxQuery(url=URL, match_type=MatchType.DIRECTORY, exclude_self=True)
        )
        assert {row.url for row in rows} == {SIBLING}

    def test_host_scope(self):
        rows = self._cdx().query(CdxQuery(url=URL, match_type=MatchType.HOST))
        assert {row.url for row in rows} == {URL, SIBLING, ELSEWHERE}

    def test_domain_scope(self):
        rows = self._cdx().query(CdxQuery(url=URL, match_type=MatchType.DOMAIN))
        assert len({row.url for row in rows}) == 3

    def test_prefix_scope(self):
        rows = self._cdx().query(
            CdxQuery(
                url="http://site.example.com/news/",
                match_type=MatchType.PREFIX,
            )
        )
        assert {row.url for row in rows} == {URL, SIBLING}

    def test_prefix_matches_query_url_string_not_directory(self):
        """matchType=prefix matches the query URL itself, like the real
        CDX server — not the query URL's directory.

        Regression: PREFIX used to filter against ``parsed.directory``,
        returning every same-directory URL regardless of the query
        string, so a query for ``.../news/story`` wrongly matched
        ``.../news/other.html``.
        """
        cdx = self._cdx()
        rows = cdx.query(
            CdxQuery(
                url="http://site.example.com/news/story",
                match_type=MatchType.PREFIX,
            )
        )
        assert {row.url for row in rows} == {URL}  # story.html only

        # A URL that is itself a proper prefix of its siblings matches
        # itself, the sibling leaf, and subdirectory descendants.
        store = SnapshotStore()
        short = "http://site.example.com/news/story"
        longer = "http://site.example.com/news/story.html"
        nested = "http://site.example.com/news/story/part2.html"
        unrelated = "http://site.example.com/news/other.html"
        for url in (short, longer, nested, unrelated):
            store.add(snap(url=url, at=T2010, status=200))
        rows = CdxApi(store).query(
            CdxQuery(url=short, match_type=MatchType.PREFIX)
        )
        assert {row.url for row in rows} == {short, longer, nested}

        rows = CdxApi(store).query(
            CdxQuery(url=short, match_type=MatchType.PREFIX, exclude_self=True)
        )
        assert {row.url for row in rows} == {longer, nested}

    def test_archived_urls_collapse(self):
        urls = self._cdx().archived_urls(
            CdxQuery(
                url=URL,
                match_type=MatchType.HOST,
                initial_status=200,
                exclude_self=True,
            )
        )
        assert urls == (SIBLING,)

    def test_limit(self):
        rows = self._cdx().query(
            CdxQuery(url=URL, match_type=MatchType.HOST, limit=2)
        )
        assert len(rows) == 2

    def test_query_counter(self):
        cdx = self._cdx()
        cdx.query(CdxQuery(url=URL))
        cdx.archived_urls(CdxQuery(url=URL))
        assert cdx.query_count == 2


class TestCrawlPolicy:
    def test_plain_urls_crawlable(self):
        assert CrawlPolicy().crawlable("http://e.com/a/b.html")

    def test_few_params_ok(self):
        assert CrawlPolicy().crawlable("http://e.com/x.asp?a=1&b=2")

    def test_many_params_rejected(self):
        assert not CrawlPolicy().crawlable("http://e.com/x.asp?a=1&b=2&c=3&d=4")

    def test_long_query_rejected(self):
        assert not CrawlPolicy().crawlable(
            "http://e.com/x.asp?key=" + "v" * 60
        )

    def test_malformed_rejected(self):
        assert not CrawlPolicy().crawlable("not a url")


class TestArchiveCrawler:
    def test_capture_stores_snapshot(self, micro_web):
        store = SnapshotStore()
        crawler = ArchiveCrawler(micro_web.fetcher(), store)
        result = crawler.capture(
            "http://news.example.com/stays/alive.html", T2010
        )
        assert result is not None
        assert result.initial_status == 200
        assert store.has_any("http://news.example.com/stays/alive.html")

    def test_capture_of_404(self, micro_web):
        store = SnapshotStore()
        crawler = ArchiveCrawler(micro_web.fetcher(), store)
        result = crawler.capture("http://news.example.com/gone/deleted.html", T2016)
        assert result.initial_status == 404

    def test_capture_of_redirect_records_initial_and_final(self, micro_web):
        store = SnapshotStore()
        crawler = ArchiveCrawler(micro_web.fetcher(), store)
        result = crawler.capture(
            "http://news.example.com/moved/prompt.html", T2016
        )
        assert result.initial_status == 301
        assert result.redirect_location == (
            "http://news.example.com/new/prompt-target.html"
        )
        assert result.final_status == 200

    def test_transport_failure_stores_nothing(self, micro_web):
        store = SnapshotStore()
        crawler = ArchiveCrawler(micro_web.fetcher(), store)
        result = crawler.capture("http://unregistered.example.org/x", T2010)
        assert result is None
        assert crawler.capture_failures == 1
        assert len(store) == 0

    def test_sketcher_caches_cores(self):
        sketcher = BodySketcher()
        sketcher.sketch("same core text here req1111")
        sketcher.sketch("same core text here req2222")
        assert sketcher.misses == 1


class TestOrganicCrawlPlanner:
    def test_zero_rate_no_captures(self):
        planner = OrganicCrawlPlanner(horizon=T2022)
        assert planner.plan(T2010, 0.0, Stream(1)) == []

    def test_rate_controls_count(self):
        planner = OrganicCrawlPlanner(horizon=T2022)
        rng = Stream(2)
        counts = [len(planner.plan(T2010, 2.0, rng)) for _ in range(200)]
        mean = sum(counts) / len(counts)
        # ~12.2 years at 2/year.
        assert 20 < mean < 29

    def test_all_times_in_window(self):
        planner = OrganicCrawlPlanner(horizon=T2022)
        for t in planner.plan(T2010, 3.0, Stream(3)):
            assert T2010 < t < T2022


class TestTriggeredArchiver:
    def test_no_capture_before_eras(self):
        eras = default_trigger_eras(T2022)
        archiver = TriggeredArchiver(eras, Stream(4))
        assert archiver.capture_time_for(T2008) is None

    def test_covered_era_produces_delays(self):
        era = TriggerEra(
            start=T2010, end=T2022, coverage=1.0, delay_median_days=1.0
        )
        archiver = TriggeredArchiver((era,), Stream(5))
        times = [archiver.capture_time_for(T2014) for _ in range(50)]
        assert all(t is not None and t > T2014 for t in times)

    def test_coverage_fraction(self):
        era = TriggerEra(
            start=T2010, end=T2022, coverage=0.3, delay_median_days=1.0
        )
        archiver = TriggeredArchiver((era,), Stream(6))
        hits = sum(
            1 for _ in range(2000) if archiver.capture_time_for(T2014) is not None
        )
        assert 0.25 < hits / 2000 < 0.35

    def test_era_validation(self):
        with pytest.raises(ValueError):
            TriggerEra(start=T2010, end=T2008, coverage=0.5, delay_median_days=1.0)
        with pytest.raises(ValueError):
            TriggerEra(start=T2008, end=T2010, coverage=1.5, delay_median_days=1.0)
