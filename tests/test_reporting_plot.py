"""Tests for the ASCII plot and Markdown report renderers."""

from repro.reporting.cdf import ecdf
from repro.reporting.plot import ascii_cdf_plot
from repro.reporting.report import render_markdown_report


class TestAsciiPlot:
    def test_basic_shape(self):
        out = ascii_cdf_plot(
            {"a": ecdf([1, 2, 3, 4, 5])}, "T", "x", width=40, height=10
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert any("*" in line for line in lines)
        assert any(line.startswith("1.00") for line in lines)
        assert any(line.startswith("0.00") for line in lines)

    def test_log_axis(self):
        out = ascii_cdf_plot(
            {"a": ecdf([1, 10, 100, 1000])}, "T", "days", log_x=True
        )
        assert "(log scale)" in out

    def test_two_series_distinct_markers(self):
        out = ascii_cdf_plot(
            {"a": ecdf([1, 2, 3]), "b": ecdf([2, 3, 4])}, "T", "x"
        )
        assert "* a" in out and "o b" in out

    def test_empty(self):
        assert "(no data)" in ascii_cdf_plot({"a": ecdf([])}, "T", "x")

    def test_monotone_curve(self):
        # In every column, the plotted marker for a CDF never moves
        # down as x grows: find marker row per column and check.
        out = ascii_cdf_plot(
            {"a": ecdf(list(range(100)))}, "T", "x", width=30, height=12
        )
        rows = [line[6:] for line in out.splitlines()[1:13]]
        marker_row = {}
        for row_index, row in enumerate(rows):
            for col, char in enumerate(row):
                if char == "*" and col not in marker_row:
                    marker_row[col] = row_index
        cols = sorted(marker_row)
        values = [marker_row[c] for c in cols]
        assert values == sorted(values, reverse=True)


class TestMarkdownReport:
    def test_full_render(self, small_report):
        doc = render_markdown_report(small_report, title="Small-world study")
        assert doc.startswith("# Small-world study")
        for heading in (
            "## Dataset",
            "## Figure 3",
            "## Figure 4",
            "## §3",
            "## §4",
            "## §5",
            "## Paper vs measured",
        ):
            assert heading in doc
        assert "```" in doc
        assert "Figure 5" in doc and "Figure 6" in doc

    def test_counts_consistent(self, small_report):
        doc = render_markdown_report(small_report)
        assert f"**{small_report.sample_size}**" in doc
        assert f"**{small_report.n_final_200}**" in doc
