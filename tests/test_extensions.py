"""Tests for the paper's implication extensions.

Covers §5.2 implication (b) — recovering archived copies under a
different query-parameter ordering — plus the substrate behaviour it
depends on (order-insensitive page resolution) and the shared-domain
hostname generation.
"""

import pytest

from repro.analysis.query_variants import (
    canonical_key,
    find_reordered_variants,
)
from repro.archive.cdx import CdxApi
from repro.archive.crawler import ArchiveCrawler
from repro.archive.store import SnapshotStore
from repro.clock import SimTime
from repro.dataset.records import LinkRecord
from repro.rng import Stream
from repro.urls.generate import UrlFactory
from repro.urls.parse import parse_url
from repro.web.page import Page
from repro.web.site import Site
from repro.web.world import LiveWeb
from repro.wiki.templates import IABOT_USERNAME

T2005 = SimTime.from_ymd(2005, 1, 1)
T2008 = SimTime.from_ymd(2008, 1, 1)
T2012 = SimTime.from_ymd(2012, 1, 1)

PAGE_URL = "http://q.example.com/view.asp?a=1&b=2&c=3"
REORDERED = "http://q.example.com/view.asp?c=3&a=1&b=2"


def record(url) -> LinkRecord:
    return LinkRecord(
        url=url,
        article_title="A",
        posted_at=T2008,
        marked_at=T2012,
        marked_by=IABOT_USERNAME,
    )


@pytest.fixture
def query_web() -> LiveWeb:
    web = LiveWeb()
    site = Site(hostname="q.example.com", seed="qv", created_at=T2005)
    site.add_page(Page(path_query="/view.asp?a=1&b=2&c=3", created_at=T2008))
    web.add_site(site)
    return web


class TestOrderInsensitiveServing:
    def test_reordered_query_serves_same_content(self, query_web):
        a = query_web.fetch(PAGE_URL, T2012)
        b = query_web.fetch(REORDERED, T2012)
        assert a.final_status == b.final_status == 200
        # Same resource: identical stable content (nonce token aside).
        assert a.body.rsplit(" ", 1)[0] == b.body.rsplit(" ", 1)[0]

    def test_different_parameters_still_missing(self, query_web):
        result = query_web.fetch("http://q.example.com/view.asp?a=9&b=2&c=3", T2012)
        assert result.final_status == 404

    def test_pathless_urls_unaffected(self, query_web):
        assert query_web.fetch("http://q.example.com/other.html", T2012).final_status == 404


class TestReorderQuery:
    def test_produces_distinct_equivalent_url(self):
        factory = UrlFactory(Stream(3))
        url = parse_url(PAGE_URL)
        variant = factory.reorder_query(url)
        assert variant is not None
        assert str(variant) != str(url)
        assert canonical_key(str(variant)) == canonical_key(str(url))

    def test_single_param_has_no_variant(self):
        factory = UrlFactory(Stream(3))
        assert factory.reorder_query(parse_url("http://e.com/x?a=1")) is None

    def test_no_query_has_no_variant(self):
        factory = UrlFactory(Stream(3))
        assert factory.reorder_query(parse_url("http://e.com/x")) is None


class TestCanonicalKey:
    def test_order_insensitive(self):
        assert canonical_key(PAGE_URL) == canonical_key(REORDERED)

    def test_value_sensitive(self):
        assert canonical_key(PAGE_URL) != canonical_key(
            "http://q.example.com/view.asp?a=1&b=2&c=4"
        )

    def test_path_sensitive(self):
        assert canonical_key(PAGE_URL) != canonical_key(
            "http://q.example.com/other.asp?a=1&b=2&c=3"
        )

    def test_malformed_is_none(self):
        assert canonical_key("nonsense") is None


class TestVariantRecovery:
    def _cdx_with_variant(self, query_web) -> CdxApi:
        store = SnapshotStore()
        crawler = ArchiveCrawler(query_web.fetcher(), store)
        crawler.capture(REORDERED, T2008.plus_days(100))
        return CdxApi(store)

    def test_finds_archived_reordering(self, query_web):
        cdx = self._cdx_with_variant(query_web)
        report = find_reordered_variants([record(PAGE_URL)], cdx)
        assert len(report) == 1
        assert report.findings[0].archived_variant == REORDERED
        assert report.with_query == 1

    def test_queryless_links_skipped(self, query_web):
        cdx = self._cdx_with_variant(query_web)
        report = find_reordered_variants(
            [record("http://q.example.com/plain.html")], cdx
        )
        assert report.with_query == 0
        assert len(report) == 0

    def test_no_variant_archived(self):
        report = find_reordered_variants(
            [record(PAGE_URL)], CdxApi(SnapshotStore())
        )
        assert len(report) == 0

    def test_different_resource_not_matched(self, query_web):
        cdx = self._cdx_with_variant(query_web)
        report = find_reordered_variants(
            [record("http://q.example.com/view.asp?a=1&b=2&c=9")], cdx
        )
        assert len(report) == 0


class TestSharedDomains:
    def test_worldgen_produces_subdomain_siblings(self, small_world):
        from repro.urls.psl import registrable_domain

        hostnames = {
            truth.hostname for truth in small_world.truth.values()
        }
        domains = {registrable_domain(h) for h in hostnames}
        assert len(hostnames) > len(domains)
