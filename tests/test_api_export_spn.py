"""Tests for the WikiApi, dataset export, Save Page Now, and
representativeness modules."""

import pytest

from repro.analysis.representativeness import compare_datasets
from repro.archive.crawler import ArchiveCrawler
from repro.archive.savepagenow import SaveOutcome, SavePageNow
from repro.archive.store import SnapshotStore
from repro.clock import SimTime
from repro.dataset.collector import Collector
from repro.dataset.export import (
    dumps_csv,
    dumps_jsonl,
    load_dataset,
    loads_jsonl,
    save_dataset,
)
from repro.dataset.records import Dataset, LinkRecord
from repro.dataset.sampler import sample_iabot_marked
from repro.errors import DatasetError, WikiError
from repro.web.page import Page, PageFate
from repro.web.robots import RobotsRules
from repro.web.site import Site
from repro.web.world import LiveWeb
from repro.wiki.api import WikiApi
from repro.wiki.encyclopedia import Encyclopedia, PERMADEAD_CATEGORY
from repro.wiki.templates import IABOT_USERNAME, cite_web, dead_link

T2005 = SimTime.from_ymd(2005, 1, 1)
T2008 = SimTime.from_ymd(2008, 1, 1)
T2010 = SimTime.from_ymd(2010, 1, 1)
T2012 = SimTime.from_ymd(2012, 1, 1)
T2016 = SimTime.from_ymd(2016, 1, 1)


class TestWikiApi:
    def _enc(self, n_articles=7) -> Encyclopedia:
        enc = Encyclopedia()
        for index in range(n_articles):
            url = f"http://e{index}.example.com/x"
            body = (
                "* " + cite_web(url, "t").render()
                + dead_link(T2016, IABOT_USERNAME).render()
            )
            enc.create_article(f"Article {index:02d}", T2010, "U", body)
        return enc

    def test_category_pagination(self):
        api = WikiApi(self._enc())
        first = api.category_members(PERMADEAD_CATEGORY, limit=3)
        assert len(first.titles) == 3
        assert first.continue_token == first.titles[-1]
        second = api.category_members(
            PERMADEAD_CATEGORY, limit=3, continue_token=first.continue_token
        )
        assert second.titles[0] > first.titles[-1]

    def test_drain_matches_direct_listing(self):
        enc = self._enc()
        api = WikiApi(enc)
        assert api.all_category_members(PERMADEAD_CATEGORY) == (
            enc.articles_in_category(PERMADEAD_CATEGORY)
        )

    def test_revisions_pagination(self):
        enc = self._enc(1)
        title = enc.titles()[0]
        for day in range(5):
            enc.edit_article(
                title, T2010.plus_days(day + 1), "U",
                enc.article(title).wikitext + f"\nedit {day}",
            )
        api = WikiApi(enc)
        page = api.revisions(title, limit=2)
        assert [r.revision_id for r in page.revisions] == [1, 2]
        page2 = api.revisions(title, limit=2, continue_token=page.continue_token)
        assert [r.revision_id for r in page2.revisions] == [3, 4]
        everything = api.all_revisions(title)
        assert [r.revision_id for r in everything] == [1, 2, 3, 4, 5, 6]

    def test_bad_continue_token(self):
        api = WikiApi(self._enc(1))
        title = api.all_category_members(PERMADEAD_CATEGORY)[0]
        with pytest.raises(WikiError):
            api.revisions(title, continue_token="not-a-number")

    def test_limit_validation(self):
        api = WikiApi(self._enc(1))
        with pytest.raises(WikiError):
            api.category_members(PERMADEAD_CATEGORY, limit=0)

    def test_request_counting(self):
        api = WikiApi(self._enc(3))
        api.all_category_members(PERMADEAD_CATEGORY)
        assert api.request_count >= 1

    def test_events_since(self):
        enc = self._enc(3)
        api = WikiApi(enc)
        events = api.link_posted_events_since(T2008)
        assert len(events) == 3
        assert api.link_posted_events_since(T2012) == ()


def _sample_dataset() -> Dataset:
    records = [
        LinkRecord(
            url=f"http://site{i}.example.com/a/{i}.html",
            article_title=f"T{i}",
            posted_at=T2008.plus_days(i * 100),
            marked_at=T2016,
            marked_by=IABOT_USERNAME,
            site_ranking=1000 * (i + 1) if i % 2 == 0 else None,
        )
        for i in range(6)
    ]
    return Dataset(records=records, description="test export")


class TestExport:
    def test_jsonl_roundtrip(self):
        dataset = _sample_dataset()
        restored = loads_jsonl(dumps_jsonl(dataset))
        assert restored.description == dataset.description
        assert restored.records == dataset.records

    def test_header_validation(self):
        with pytest.raises(DatasetError):
            loads_jsonl('{"kind": "something-else"}\n')
        with pytest.raises(DatasetError):
            loads_jsonl("")

    def test_count_mismatch_detected(self):
        dataset = _sample_dataset()
        text = dumps_jsonl(dataset)
        truncated = "\n".join(text.splitlines()[:-1]) + "\n"
        with pytest.raises(DatasetError):
            loads_jsonl(truncated)

    def test_csv_columns(self):
        out = dumps_csv(_sample_dataset())
        lines = out.strip().splitlines()
        assert lines[0].startswith("url,article_title,posted_date")
        assert len(lines) == 7
        assert "site0.example.com" in lines[1]

    def test_save_load_files(self, tmp_path):
        dataset = _sample_dataset()
        jsonl = str(tmp_path / "data.jsonl")
        save_dataset(dataset, jsonl)
        assert load_dataset(jsonl).records == dataset.records
        csv_path = str(tmp_path / "data.csv")
        save_dataset(dataset, csv_path)
        with pytest.raises(DatasetError):
            load_dataset(csv_path)

    def test_unknown_extension(self, tmp_path):
        with pytest.raises(DatasetError):
            save_dataset(_sample_dataset(), str(tmp_path / "data.parquet"))


def _spn_web() -> LiveWeb:
    web = LiveWeb()
    site = Site(
        hostname="spn.example.com",
        seed="spn",
        created_at=T2005,
        robots=RobotsRules(disallow=("/private/",)),
    )
    site.add_page(Page(path_query="/good.html", created_at=T2008))
    site.add_page(
        Page(
            path_query="/gone.html",
            created_at=T2008,
            fate=PageFate.DELETED,
            died_at=T2010,
        )
    )
    site.add_page(Page(path_query="/private/page.html", created_at=T2008))
    web.add_site(site)
    return web


class TestSavePageNow:
    def _spn(self, web):
        store = SnapshotStore()
        return SavePageNow(ArchiveCrawler(web.fetcher(), store)), store

    def test_saves_live_page(self):
        web = _spn_web()
        spn, store = self._spn(web)
        result = spn.save("http://spn.example.com/good.html", T2012)
        assert result.outcome is SaveOutcome.SAVED
        assert result.link_looks_alive
        assert store.has_any("http://spn.example.com/good.html")

    def test_reports_error_page(self):
        web = _spn_web()
        spn, store = self._spn(web)
        result = spn.save("http://spn.example.com/gone.html", T2012)
        assert result.outcome is SaveOutcome.SAVED_ERROR_PAGE
        assert not result.link_looks_alive
        assert result.snapshot.initial_status == 404

    def test_robots_blocked(self):
        web = _spn_web()
        spn, store = self._spn(web)
        result = spn.save("http://spn.example.com/private/page.html", T2012)
        assert result.outcome is SaveOutcome.BLOCKED
        assert len(store) == 0

    def test_policy_blocked(self):
        web = _spn_web()
        spn, _ = self._spn(web)
        result = spn.save(
            "http://spn.example.com/x.asp?a=1&b=2&c=3&d=4", T2012
        )
        assert result.outcome is SaveOutcome.BLOCKED

    def test_unreachable(self):
        web = _spn_web()
        spn, _ = self._spn(web)
        result = spn.save("http://nowhere.example.org/x", T2012)
        assert result.outcome is SaveOutcome.UNREACHABLE


class TestRepresentativeness:
    def test_dataset_vs_random_sample(self, small_world):
        collector = Collector(small_world.encyclopedia, small_world.site_rankings)
        all_links = collector.collect()
        k = min(len(all_links), 140)
        ours = collector.to_dataset(sample_iabot_marked(all_links, k, seed=1))
        control = collector.to_dataset(sample_iabot_marked(all_links, k, seed=2))
        report = compare_datasets(
            ours, control, small_world.fetcher(), small_world.study_time,
            ks_threshold=0.15, tv_threshold=0.15,  # n~140: binomial noise
        )
        assert report.representative, report.describe()

    def test_divergent_samples_flagged(self, small_world):
        collector = Collector(small_world.encyclopedia, small_world.site_rankings)
        all_links = collector.collect()
        sample = collector.to_dataset(
            sample_iabot_marked(all_links, min(len(all_links), 140), seed=1)
        )
        # A control made only of early-posted links must diverge.
        early = sorted(all_links, key=lambda l: l.posted_at.days)[:60]
        biased = collector.to_dataset(early)
        report = compare_datasets(
            sample, biased, small_world.fetcher(), small_world.study_time,
            ks_threshold=0.15, tv_threshold=0.15,
        )
        assert not report.representative
