"""Tests for repro.textsim — shingling, MinHash, synthetic content."""

from repro.textsim.content import BOILERPLATE_WORDS, ContentGenerator
from repro.textsim.shingles import (
    NUM_MINHASHES,
    jaccard,
    minhash_sketch,
    shingle_set,
    shingle_similarity,
    sketch_similarity,
    tokenize,
)


class TestTokenize:
    def test_lowercases_and_splits(self):
        assert tokenize("Hello, World 123!") == ["hello", "world", "123"]

    def test_empty(self):
        assert tokenize("...") == []


class TestShingles:
    def test_count(self):
        text = "a b c d e"
        assert len(shingle_set(text, k=4)) == 2

    def test_short_document_single_shingle(self):
        assert shingle_set("one two", k=4) == frozenset({("one", "two")})

    def test_empty_document(self):
        assert shingle_set("", k=4) == frozenset()

    def test_k_validation(self):
        import pytest

        with pytest.raises(ValueError):
            shingle_set("a b", k=0)


class TestJaccard:
    def test_identical(self):
        s = frozenset({1, 2, 3})
        assert jaccard(s, s) == 1.0

    def test_disjoint(self):
        assert jaccard(frozenset({1}), frozenset({2})) == 0.0

    def test_both_empty(self):
        assert jaccard(frozenset(), frozenset()) == 1.0

    def test_partial(self):
        assert jaccard(frozenset({1, 2}), frozenset({2, 3})) == 1 / 3


class TestShingleSimilarity:
    def test_identical_text(self):
        assert shingle_similarity("a b c d e f", "a b c d e f") == 1.0

    def test_unrelated_text(self):
        a = "alpha beta gamma delta epsilon zeta"
        b = "one two three four five six"
        assert shingle_similarity(a, b) == 0.0


class TestMinhash:
    def test_sketch_length(self):
        assert len(minhash_sketch("a b c d e f g")) == NUM_MINHASHES

    def test_deterministic(self):
        text = "the quick brown fox jumps over the lazy dog " * 10
        assert minhash_sketch(text) == minhash_sketch(text)

    def test_empty_sketches_identical(self):
        assert sketch_similarity(minhash_sketch(""), minhash_sketch("")) == 1.0

    def test_identical_documents_similarity_one(self):
        text = "w x y z " * 50
        assert sketch_similarity(minhash_sketch(text), minhash_sketch(text)) == 1.0

    def test_distinct_documents_similarity_low(self):
        gen = ContentGenerator("seed")
        a = minhash_sketch(gen.article_core("/one"))
        b = minhash_sketch(gen.article_core("/two"))
        assert sketch_similarity(a, b) < 0.2

    def test_near_identical_documents_similarity_high(self):
        gen = ContentGenerator("seed")
        a = minhash_sketch(gen.error_page(1).body)
        b = minhash_sketch(gen.error_page(2).body)
        assert sketch_similarity(a, b) > 0.8

    def test_mismatched_lengths_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            sketch_similarity((1, 2), (1, 2, 3))


class TestContentGenerator:
    def test_error_pages_exceed_detector_threshold(self):
        # The §3 detector requires >99% shingle similarity between two
        # renders of the same boilerplate despite per-request noise.
        gen = ContentGenerator("site1")
        sim = shingle_similarity(gen.error_page(1).body, gen.error_page(2).body)
        assert sim > 0.99

    def test_parked_pages_exceed_detector_threshold(self):
        gen = ContentGenerator("site2")
        sim = shingle_similarity(gen.parked_page(1).body, gen.parked_page(5).body)
        assert sim > 0.99

    def test_renders_never_byte_identical(self):
        gen = ContentGenerator("site3")
        assert gen.error_page(1).body != gen.error_page(2).body

    def test_articles_distinct_across_paths(self):
        gen = ContentGenerator("site4")
        sim = shingle_similarity(
            gen.article("/a.html", 1).body, gen.article("/b.html", 1).body
        )
        assert sim < 0.05

    def test_article_vs_error_distinct(self):
        gen = ContentGenerator("site5")
        sim = shingle_similarity(
            gen.article("/a.html", 1).body, gen.error_page(1).body
        )
        assert sim < 0.05

    def test_error_pages_differ_across_sites(self):
        a = ContentGenerator("siteA").error_page(1).body
        b = ContentGenerator("siteB").error_page(1).body
        assert shingle_similarity(a, b) < 0.1

    def test_boilerplate_padded_to_target(self):
        gen = ContentGenerator("site6")
        assert len(gen.error_core().split()) >= BOILERPLATE_WORDS

    def test_article_core_cached(self):
        gen = ContentGenerator("site7")
        assert gen.article_core("/x") is gen.article_core("/x")

    def test_login_page_mentions_credentials(self):
        gen = ContentGenerator("site8")
        assert "password" in gen.login_page(1).body
