"""Tests for repro.urls.psl — Public Suffix List matching."""

import pytest

from repro.errors import UrlError
from repro.urls.psl import PublicSuffixList, default_psl, registrable_domain


class TestPublicSuffix:
    def test_simple_tld(self):
        assert default_psl().public_suffix("www.example.com") == "com"

    def test_two_level_suffix(self):
        assert default_psl().public_suffix("news.bbc.co.uk") == "co.uk"

    def test_three_level_suffix(self):
        psl = default_psl()
        assert psl.public_suffix("www.parliament.tas.gov.au") == "tas.gov.au"

    def test_unknown_tld_defaults_to_last_label(self):
        assert default_psl().public_suffix("foo.bar.unknowntld") == "unknowntld"

    def test_wildcard_rule(self):
        # *.ck: any single label under ck is a public suffix.
        assert default_psl().public_suffix("shop.anything.ck") == "anything.ck"

    def test_exception_rule(self):
        # !www.ck: www.ck is registrable despite the wildcard.
        assert default_psl().public_suffix("www.ck") == "ck"


class TestRegistrableDomain:
    def test_paper_examples(self):
        assert registrable_domain("www.baltimoresun.com") == "baltimoresun.com"
        assert registrable_domain("www.znaci.net") == "znaci.net"
        assert registrable_domain("www.main-spitze.de") == "main-spitze.de"
        assert registrable_domain("www.lnr.fr") == "lnr.fr"
        assert registrable_domain("jhpress.nli.org.il") == "nli.org.il"
        assert (
            registrable_domain("www.parliament.tas.gov.au")
            == "parliament.tas.gov.au"
        )

    def test_deep_subdomains_collapse(self):
        assert registrable_domain("a.b.c.example.co.uk") == "example.co.uk"

    def test_hostname_equal_to_suffix_maps_to_itself(self):
        assert registrable_domain("com") == "com"

    def test_case_insensitive(self):
        assert registrable_domain("WWW.Example.COM") == "example.com"

    def test_trailing_dot_tolerated(self):
        assert registrable_domain("www.example.com.") == "example.com"

    def test_wildcard_registrable(self):
        assert registrable_domain("shop.anything.ck") == "shop.anything.ck"

    def test_exception_registrable(self):
        assert registrable_domain("www.ck") == "www.ck"


class TestValidation:
    def test_empty_hostname_rejected(self):
        with pytest.raises(UrlError):
            registrable_domain("")

    def test_empty_label_rejected(self):
        with pytest.raises(UrlError):
            registrable_domain("foo..com")

    def test_leading_dot_rejected(self):
        with pytest.raises(UrlError):
            registrable_domain(".example.com")


class TestCustomRules:
    def test_from_text(self):
        psl = PublicSuffixList.from_text(
            """
            // comment
            zz
            co.zz
            """
        )
        assert psl.registrable_domain("www.site.co.zz") == "site.co.zz"
        assert psl.registrable_domain("www.site.zz") == "site.zz"
