"""Edge-case tests for the Study orchestrator."""

from repro.analysis.study import Study, StudyReport
from repro.archive.cdx import CdxApi
from repro.archive.store import SnapshotStore
from repro.clock import STUDY_TIME, SimTime
from repro.dataset.records import LinkRecord
from repro.net.dns import DnsTable
from repro.net.fetch import Fetcher
from repro.wiki.templates import IABOT_USERNAME


class _EmptyOrigin:
    def handle(self, address, request, at):  # pragma: no cover - never called
        raise AssertionError("no sites exist")


def _study(records) -> Study:
    return Study(
        records=records,
        fetcher=Fetcher(DnsTable(), _EmptyOrigin()),
        cdx=CdxApi(SnapshotStore()),
        at=STUDY_TIME,
    )


class TestEmptyStudy:
    def test_zero_records(self):
        report = _study([]).run()
        assert report.sample_size == 0
        assert sum(report.counts.values()) == 0
        assert report.frac_final_200 == 0.0
        assert report.frac_genuinely_alive == 0.0
        assert report.n_never_archived == 0
        assert report.summary()  # renders without dividing by zero

    def test_single_unresolvable_link(self):
        record = LinkRecord(
            url="http://gone.example.org/x",
            article_title="T",
            posted_at=SimTime.from_ymd(2010, 1, 1),
            marked_at=SimTime.from_ymd(2016, 1, 1),
            marked_by=IABOT_USERNAME,
        )
        report = _study([record]).run()
        assert report.sample_size == 1
        assert report.n_never_archived == 1
        assert report.n_rest == 1
        assert len(report.spatial.records) == 1
        assert report.spatial.records[0].hostname_gap

    def test_report_fractions_never_divide_by_zero(self):
        report = _study([]).run()
        # Every derived fraction must be well-defined on empty data.
        assert report.frac_alive_via_redirect == 0.0
        assert report.frac_first_post_marking_erroneous == 0.0
        assert report.frac_pre_marking_200 == 0.0
        assert report.frac_patchable_via_redirect == 0.0

    def test_report_is_plain_dataclass(self):
        report = _study([]).run()
        assert isinstance(report, StudyReport)
