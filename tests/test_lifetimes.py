"""Tests for the link-lifetime estimators (extension)."""

import pytest

from repro.analysis.lifetimes import (
    kaplan_meier,
    median_survival,
    survival_at,
    time_to_marking,
)
from repro.clock import SimTime
from repro.dataset.records import LinkRecord


def record(posted_days, marked_days) -> LinkRecord:
    return LinkRecord(
        url="http://e.com/x",
        article_title="T",
        posted_at=SimTime(float(posted_days)),
        marked_at=SimTime(float(marked_days)),
        marked_by="InternetArchiveBot",
    )


class TestTimeToMarking:
    def test_basic(self):
        assert time_to_marking([record(100, 400)]) == [300.0]

    def test_clamped_at_zero(self):
        assert time_to_marking([record(400, 100)]) == [0.0]


class TestKaplanMeier:
    def test_no_censoring_matches_ecdf(self):
        durations = [10.0, 20.0, 30.0, 40.0]
        curve = kaplan_meier(durations, [True] * 4)
        assert [p.survival for p in curve] == pytest.approx(
            [0.75, 0.5, 0.25, 0.0]
        )

    def test_censoring_inflates_survival(self):
        durations = [10.0, 20.0, 30.0, 40.0]
        uncensored = kaplan_meier(durations, [True, True, True, True])
        censored = kaplan_meier(durations, [True, False, True, True])
        assert survival_at(censored, 35.0) > survival_at(uncensored, 35.0)

    def test_ties_handled(self):
        curve = kaplan_meier([10.0, 10.0, 20.0], [True, True, True])
        assert curve[0].events == 2
        assert curve[0].survival == pytest.approx(1 / 3)

    def test_fully_censored_flat(self):
        curve = kaplan_meier([5.0, 10.0], [False, False])
        assert curve == []
        assert survival_at(curve, 100.0) == 1.0

    def test_median(self):
        curve = kaplan_meier([10.0, 20.0, 30.0, 40.0], [True] * 4)
        assert median_survival(curve) == 20.0

    def test_median_not_reached(self):
        curve = kaplan_meier([10.0, 20.0, 30.0], [True, False, False])
        assert median_survival(curve) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            kaplan_meier([1.0], [True, False])
        with pytest.raises(ValueError):
            kaplan_meier([-1.0], [True])


class TestAgainstGroundTruth:
    def test_km_recovers_generator_lifetimes(self, small_world):
        """Estimate survival from (observable-style) first-failure data
        and compare with the generator's dead_from ground truth."""
        durations = []
        observed = []
        horizon = small_world.study_time
        for truth in small_world.truth.values():
            posted = truth.posted_at
            if truth.dead_from is not None and truth.dead_from < horizon:
                durations.append(max(truth.dead_from.days - posted.days, 0.0))
                observed.append(True)
            else:
                durations.append(max(horizon.days - posted.days, 0.0))
                observed.append(False)
        curve = kaplan_meier(durations, observed)
        # ~26% of links never die; survival must level off above that
        # and the curve must drop substantially within a decade.
        assert survival_at(curve, 365.0 * 30) > 0.15
        assert survival_at(curve, 365.0 * 10) < 0.7

    def test_marking_lags_death(self, small_report, small_world):
        """Posted-to-marking durations upper-bound posted-to-death."""
        lag_violations = 0
        for record_ in small_report.dataset.records:
            truth = small_world.truth[record_.url]
            if truth.dead_from is None:
                continue
            if record_.marked_at < truth.dead_from:
                lag_violations += 1
        # IABot can only mark after the link is dead (tiny slack for
        # flaky sites where "death" is fuzzy).
        assert lag_violations <= len(small_report.dataset.records) * 0.05
