"""Benchmark smoke test: every bench_*.py runs end-to-end at toy scale.

The benchmarks only run in the tier-3 CI job (and by hand before a
release), so a refactor can silently break one — a renamed fixture, a
stale import, a digest key nobody updates — and stay broken for weeks.
This test closes that gap cheaply: one subprocess pytest run over
``benchmarks/`` with the world shrunk to a few hundred links, the
service sweeps cut to a few thousand requests, and the JSON digests
redirected to a tmp dir (``REPRO_BENCH_OUT``) so a toy-scale run can
never clobber the committed full-scale ``BENCH_*.json`` files that
EXPERIMENTS.md quotes.

Numbers are not checked here — toy-scale figures mean nothing. What
is checked: every benchmark collects, runs, and passes its own
internal assertions, and every digest writer produces parseable JSON
with its load-bearing keys.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Scale-down knobs: a few hundred links exercises every code path
#: the benches have in well under a minute of study time. (Paper-
#: figure assertions gate themselves on the `paper_scale` fixture, so
#: a world this small still runs every benchmark to completion.)
TOY_ENV = {
    "REPRO_BENCH_LINKS": "800",
    "REPRO_BENCH_SAMPLE": "800",
    "REPRO_BENCH_SERVICE_REQUESTS": "2000",
    "REPRO_BENCH_CLUSTER_REQUESTS": "3000",
    "REPRO_BENCH_LIVE_LINKS": "400",
    "REPRO_BENCH_LIVE_SAMPLE": "150",
    "REPRO_BENCH_LIVE_REQUESTS": "1000",
    "REPRO_NO_COV": "1",
}

#: Digest name -> keys the writer must produce (EXPERIMENTS.md and the
#: README quote these; a silent rename breaks the docs pipeline).
DIGESTS = {
    "BENCH_analysis.json": ("blocks", "headline_blocks"),
    "BENCH_obs.json": ("overhead_frac", "spans", "service"),
    "BENCH_stack.json": ("overhead_frac", "stacked_seconds"),
    "BENCH_service.json": ("single_node", "cluster"),
    "BENCH_live.json": ("delta_rebuild", "swap"),
    "BENCH_reconfig.json": ("delta_wire", "swap_discipline", "rebalance"),
}


@pytest.mark.slow
def test_every_benchmark_runs_at_toy_scale(tmp_path):
    env = dict(os.environ)
    env.update(TOY_ENV)
    env["REPRO_BENCH_OUT"] = str(tmp_path)
    env["PYTHONPATH"] = (
        str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    )
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            str(REPO_ROOT / "benchmarks"),
            "-o",
            "addopts=",  # drop the marker filter and -q from pyproject
            "-q",
            "-p",
            "no:cacheprovider",
            "--benchmark-disable",
            "-x",
        ],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
        timeout=1800,
    )
    assert proc.returncode == 0, (
        f"toy-scale benchmark run failed:\n"
        f"--- stdout (tail) ---\n{proc.stdout[-4000:]}\n"
        f"--- stderr (tail) ---\n{proc.stderr[-4000:]}"
    )

    for name, keys in DIGESTS.items():
        path = tmp_path / name
        assert path.exists(), f"{name} was not written (stdout: see above)"
        payload = json.loads(path.read_text())
        for key in keys:
            assert key in payload, f"{name} lost its {key!r} key"

    # The committed full-scale digests were not touched.
    cluster = json.loads((tmp_path / "BENCH_service.json").read_text())
    assert cluster["cluster"]["n_requests_per_run"] == 3000

    # The live pipeline delta-built and swapped at toy scale.
    live = json.loads((tmp_path / "BENCH_live.json").read_text())
    assert live["swap"]["n_requests"] == 1000
    assert live["delta_rebuild"]["batches"]
    for digest in live["delta_rebuild"]["batches"]:
        assert digest["dirty"] >= digest["events"]

    # Deltas beat snapshots at every event-batch size, even toy scale.
    reconfig = json.loads((tmp_path / "BENCH_reconfig.json").read_text())
    assert reconfig["delta_wire"]["batches"]
    for digest in reconfig["delta_wire"]["batches"]:
        assert digest["delta_bytes"] < digest["snapshot_bytes"]
    assert reconfig["swap_discipline"]["rolling"]["drained_batches"] > 0

    # The service-tier obs arm ran at toy scale and recorded its keys.
    obs = json.loads((tmp_path / "BENCH_obs.json").read_text())
    assert obs["service"]["requests"] == 2000
    for key in ("off_seconds", "on_seconds", "overhead_frac", "spans"):
        assert key in obs["service"], f"service arm lost its {key!r} key"
