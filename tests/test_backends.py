"""The backend middleware kernel: layer laws and the differential proof.

Three families of guarantees pin :mod:`repro.backends`:

1. **Layer-ordering laws** (property tests): the behaviours the
   canonical order ``metrics -> cache -> trace -> retry -> fault ->
   base`` encodes, replayed over randomized keys, fault rates, and
   observer placements.
2. **Order validation**: :func:`validate_stack_order` accepts every
   lawful composition and rejects inverted, duplicated, or unknown
   behavioural layers.
3. **The differential refactor proof**: every scenario digest in
   ``tests/golden/stack_differential.json`` — committed from the
   pre-refactor wrappers — is recomputed through the composed stacks
   and must match byte-for-byte.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import (
    CacheLayer,
    CdxBackend,
    FaultGate,
    FaultLayer,
    FetchBackend,
    Layer,
    MetricsLayer,
    Op,
    RetryLayer,
    SpanSpec,
    TraceLayer,
    layer_names,
    validate_stack_order,
)
from repro.errors import DnsServfail
from repro.faults.inject import FaultChannel
from repro.faults.plan import FaultSpec
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.retry import RetryCounters, RetryPolicy

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Fast, ample retry budget: masks any transient depth the tests draw.
MASKING = RetryPolicy(
    max_retries=8, base_delay_ms=1.0, max_delay_ms=4.0, budget_ms=1e9
)


class _FlakyOp:
    """A base backend whose first ``depth[key]`` attempts per key fail
    transiently — the ground truth the cache/retry laws count against.
    """

    def __init__(self, depths: dict) -> None:
        self.depths = dict(depths)
        self.calls = 0
        self.attempts: dict = {}

    def call(self, req):
        self.calls += 1
        seen = self.attempts.get(req, 0)
        self.attempts[req] = seen + 1
        if seen < self.depths.get(req, 0):
            raise DnsServfail(str(req))
        return ("ok", req)


# -- law 1: cache above retry --------------------------------------------------


class TestCacheAboveRetry:
    @given(
        depths=st.dictionaries(
            st.integers(0, 7), st.integers(0, 3), min_size=1, max_size=8
        ),
        repeats=st.integers(1, 4),
    )
    def test_masked_transient_is_one_backend_recovery(self, depths, repeats):
        """A retry-masked transient costs depth+1 base attempts *once*;
        every repeat of the request is a memo hit that never re-enters
        the retry loop."""
        base = _FlakyOp(depths)
        counters = RetryCounters()
        stack = CacheLayer(RetryLayer(base, policy=MASKING, counters=counters))
        validate_stack_order(stack)

        for _ in range(repeats):
            for key in depths:
                assert stack.call(key) == ("ok", key)

        for key, depth in depths.items():
            # exactly one recovery per key, regardless of repeats
            assert base.attempts[key] == depth + 1
        assert counters.retries == sum(depths.values())
        assert stack.misses == len(depths)
        assert stack.hits == (repeats - 1) * len(depths)

    def test_retry_above_cache_would_recount(self):
        """The anti-law, concretely: with the cache *below* retry the
        memo can capture nothing (failures propagate before a store),
        so the inversion is also rejected by the validator."""
        inverted = RetryLayer(CacheLayer(_FlakyOp({}), key_fn=str))
        with pytest.raises(ValueError, match="canonical layer order"):
            validate_stack_order(inverted)


# -- law 2: fault decisions are independent of cache position ------------------


def _fault_stack(seed: int, spec: FaultSpec, cached: bool):
    channel = FaultChannel(seed, "law", spec)
    base = Op("base", lambda req: ("ok", req))
    gate = FaultGate(
        channel=channel,
        key_fn=lambda req: str(req),
        exc_fn=lambda req: DnsServfail(str(req)),
    )
    stack = RetryLayer(FaultLayer(base, gates=(gate,)), policy=MASKING)
    if cached:
        stack = CacheLayer(stack)
    validate_stack_order(stack)
    return stack, channel, base


class TestFaultDecisionsVsCachePosition:
    @given(
        rate=st.floats(0.05, 0.95),
        seed=st.integers(0, 10_000),
        keys=st.lists(st.integers(0, 9), min_size=1, max_size=16),
    )
    def test_injected_faults_and_responses_identical(self, rate, seed, keys):
        """Identically seeded channels make the same decisions whether
        or not a cache sits above: depth is a pure function of (seed,
        channel, key), first contact drives every injection, and memo
        hits never re-consult the channel (a cleared transient stays
        cleared either way)."""
        spec = FaultSpec(rate=rate, max_repeats=3)
        cached, ch_c, base_c = _fault_stack(seed, spec, cached=True)
        uncached, ch_u, base_u = _fault_stack(seed, spec, cached=False)

        for key in keys:
            assert cached.call(key) == uncached.call(key)

        assert ch_c.injected == ch_u.injected
        for key in set(keys):
            assert ch_c.depth(str(key)) == ch_u.depth(str(key))
        # a faulted attempt raises at the gate, so the base sees exactly
        # one (successful) call per distinct key — cached or not
        assert base_c.calls == len(set(keys))
        assert base_u.calls >= base_c.calls


# -- law 3: observers are order-free -------------------------------------------

_SPEC = SpanSpec(kind="law", name_fn=str)


def _observed_stack(trace_slot, metrics_slot, tracer, registry, seed, spec):
    """The behavioural chain cache -> retry -> fault -> base with the
    observer layers spliced in at slots 0 (outermost) .. 3 (innermost).
    """
    channel = FaultChannel(seed, "law", spec)
    base = Op("base", lambda req: ("ok", req))
    gate = FaultGate(
        channel=channel,
        key_fn=lambda req: str(req),
        exc_fn=lambda req: DnsServfail(str(req)),
    )
    stack = base

    def observe(stack, slot):
        if trace_slot == slot:
            stack = TraceLayer(stack, tracer, _SPEC)
        if metrics_slot == slot:
            stack = MetricsLayer(stack, registry, "law")
        return stack

    stack = observe(stack, 3)
    stack = FaultLayer(stack, gates=(gate,))
    stack = observe(stack, 2)
    stack = RetryLayer(stack, policy=MASKING)
    stack = observe(stack, 1)
    stack = CacheLayer(stack)
    stack = observe(stack, 0)
    return stack


class TestObserverPermutation:
    @settings(deadline=None)
    @given(
        trace_slot=st.integers(0, 3),
        metrics_slot=st.integers(0, 3),
        seed=st.integers(0, 10_000),
        keys=st.lists(st.integers(0, 9), min_size=1, max_size=12),
    )
    def test_responses_invariant_under_observer_placement(
        self, trace_slot, metrics_slot, seed, keys
    ):
        """Trace and metrics layers are observers: wherever they sit,
        every placement validates and yields byte-identical responses
        to the bare behavioural stack."""
        spec = FaultSpec(rate=0.4, max_repeats=2)
        bare = _observed_stack(-1, -1, None, None, seed, spec)
        observed = _observed_stack(
            trace_slot,
            metrics_slot,
            Tracer(),
            MetricsRegistry(),
            seed,
            spec,
        )
        validate_stack_order(bare)
        validate_stack_order(observed)
        for key in keys:
            assert observed.call(key) == bare.call(key)

    def test_passthrough_observers_record_nothing(self):
        """tracer=None / metrics=None observers are strict pass-throughs."""
        base = Op("base", lambda req: req * 2)
        stack = MetricsLayer(TraceLayer(base, None, _SPEC), None, "law")
        assert stack.call(21) == 42
        assert base.calls == 1


# -- validate_stack_order ------------------------------------------------------


class _UnknownLayer(Layer):
    layer_kind = "wat"


class TestValidateStackOrder:
    def _base(self):
        return Op("base", lambda req: req)

    def test_canonical_order_passes(self):
        stack = MetricsLayer(
            CacheLayer(
                TraceLayer(
                    RetryLayer(FaultLayer(self._base(), gates=())),
                    None,
                    _SPEC,
                ),
            ),
            None,
            "ok",
        )
        validate_stack_order(stack)
        assert layer_names(stack) == [
            "metrics", "cache", "trace", "retry", "fault", "base",
        ]

    def test_fault_above_retry_rejected(self):
        stack = FaultLayer(RetryLayer(self._base()), gates=())
        with pytest.raises(ValueError, match="canonical layer order"):
            validate_stack_order(stack)

    def test_duplicate_behavioural_layer_rejected(self):
        stack = CacheLayer(CacheLayer(self._base()))
        with pytest.raises(ValueError, match="duplicate"):
            validate_stack_order(stack)

    def test_unknown_layer_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            validate_stack_order(_UnknownLayer(self._base()))

    def test_bare_base_passes(self):
        validate_stack_order(self._base())


# -- concrete assemblies keep the canonical shape ------------------------------


class _NullFetcher:
    retry_counters = RetryCounters()

    def fetch(self, url, at):  # pragma: no cover - never called here
        raise AssertionError


class _NullCdx:
    def query(self, request):  # pragma: no cover
        raise AssertionError

    def archived_urls(self, request):  # pragma: no cover
        raise AssertionError


class TestConcreteStackShapes:
    def test_fetch_backend_layering(self):
        stack = FetchBackend(_NullFetcher())
        assert layer_names(stack._cache) == ["cache", "trace", "retry", "base"]

    def test_cdx_backend_layering(self):
        stack = CdxBackend(_NullCdx())
        assert layer_names(stack._cache) == ["cache", "trace", "retry", "base"]


# -- the differential refactor proof -------------------------------------------


def _load_goldens_script():
    path = REPO_ROOT / "scripts" / "stack_goldens.py"
    spec = importlib.util.spec_from_file_location("stack_goldens", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_stack_differential_digests_match_pre_refactor_goldens():
    """Every scenario (clean/masked x serial/parallel, plus unretried
    net faults) renders a report whose digest matches the goldens
    committed from the pre-refactor wrapper implementations."""
    goldens = _load_goldens_script()
    committed = json.loads(goldens.golden_path(REPO_ROOT).read_text())
    assert goldens.compute_digests() == committed
