"""Differential verification of the fault-injection layer.

The harness studies one seeded world three ways — fault-free, faulted
with masking retries, faulted without retries — and pins down the
layer's two contracts:

1. **Masking**: under a transient-only :class:`FaultPlan`, a retry
   budget of at least ``plan.required_retries()`` yields a report
   byte-identical to the fault-free run, serial or sharded.
2. **Confinement**: with retries off, live-web transients degrade the
   report only by moving probes into the Figure-4 failure buckets —
   DNS_FAILURE / TIMEOUT for a first-hop fault, OTHER for a fault on
   a redirect hop (the chain did not end in 200/404); every
   archive-side result stays untouched.

Unretried *archive* faults, by contrast, legitimately crash the
pipeline — a real study with no retry logic dies on a 429 — and the
harness asserts that too rather than papering over it.

Heavier sweeps (rate ladders, multi-seed matrices) carry the ``chaos``
marker and stay out of tier-1.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.analysis.study import Study, StudyReport
from repro.dataset.worldgen import WorldConfig, generate_world
from repro.errors import ArchiveUnavailable, CdxRateLimited
from repro.exec import StudyExecutor
from repro.faults import (
    FaultChannel,
    FaultPlan,
    FaultSpec,
    FaultyAvailabilityApi,
    faulty_availability,
)
from repro.retry import DEFAULT_MASKING_POLICY, RetryPolicy
from repro.iabot.archive_client import IABotArchiveClient
from repro.net.status import Outcome

#: The probe outcomes an unmasked live-web transient may degrade into:
#: DNS_FAILURE / TIMEOUT when the first hop fails, OTHER when a
#: redirect hop does (the fetcher reports the truncated chain).
FIGURE4_FAILURE_BUCKETS = frozenset(
    {Outcome.DNS_FAILURE, Outcome.TIMEOUT, Outcome.OTHER}
)


@pytest.fixture(scope="module")
def fault_world():
    """One seeded world every differential comparison shares."""
    return generate_world(WorldConfig(n_links=260, target_sample=200, seed=7))


@pytest.fixture(scope="module")
def baseline(fault_world) -> StudyReport:
    """The fault-free study of :func:`fault_world`."""
    return Study.from_world(fault_world).run()


def assert_reports_identical(a: StudyReport, b: StudyReport) -> None:
    """Field-for-field equality, ignoring execution-shape artifacts.

    ``stats`` (wall times) is skipped outright; ``outcomes`` is
    compared with per-record provenance stripped — provenance carries
    wall costs and cache-hit splits, which vary across runs, but every
    measurement field must not.
    """
    for f in dataclasses.fields(StudyReport):
        if f.name == "stats":
            continue
        if f.name == "outcomes":
            assert _sans_provenance(a.outcomes) == _sans_provenance(
                b.outcomes
            ), f.name
            continue
        assert getattr(a, f.name) == getattr(b, f.name), f.name


def _sans_provenance(outcomes):
    if outcomes is None:
        return None
    return tuple(
        dataclasses.replace(outcome, provenance=None) for outcome in outcomes
    )


def assert_degradation_confined(
    baseline: StudyReport, degraded: StudyReport
) -> int:
    """Check retry-less net-fault degradation; return probes moved.

    Every probe either matches the fault-free run or landed in a
    Figure-4 failure bucket, and nothing downstream of the archive
    (censuses, temporal, spatial, typos) moved at all.
    """
    base_by_url = {p.record.url: p.result.outcome for p in baseline.probes}
    moved = 0
    for probe in degraded.probes:
        outcome = probe.result.outcome
        if outcome != base_by_url[probe.record.url]:
            moved += 1
            assert outcome in FIGURE4_FAILURE_BUCKETS, probe.record.url
    assert degraded.censuses == baseline.censuses
    assert degraded.temporal == baseline.temporal
    assert degraded.spatial == baseline.spatial
    assert degraded.typos == baseline.typos
    return moved


# -- determinism of the injection layer itself -------------------------------------


class TestFaultDeterminism:
    def test_channel_decisions_are_pure(self):
        spec = FaultSpec(rate=0.5, max_repeats=3)
        a = FaultChannel(11, "dns", spec)
        b = FaultChannel(11, "dns", spec)
        keys = [f"host{i}.example.com" for i in range(200)]
        assert [a.depth(k) for k in keys] == [b.depth(k) for k in keys]
        depths = [a.depth(k) for k in keys]
        assert any(d == 0 for d in depths)
        assert any(d > 0 for d in depths)
        assert all(0 <= d <= spec.max_repeats for d in depths)

    def test_should_fault_clears_after_depth(self):
        channel = FaultChannel(11, "dns", FaultSpec(rate=1.0, max_repeats=3))
        key = "flaky.example.com"
        depth = channel.depth(key)
        assert 1 <= depth <= 3
        observed = [channel.should_fault(key) for _ in range(depth + 4)]
        assert observed == [True] * depth + [False] * 4
        assert channel.injected == depth

    def test_permanent_faults_never_clear(self):
        channel = FaultChannel(11, "dns", FaultSpec(rate=1.0, permanent=True))
        assert all(channel.should_fault("down.example.com") for _ in range(64))

    def test_seeds_decorrelate_channels(self):
        spec = FaultSpec(rate=0.3, max_repeats=2)
        keys = [f"host{i}.example.com" for i in range(300)]
        one = [FaultChannel(1, "dns", spec).depth(k) for k in keys]
        two = [FaultChannel(2, "dns", spec).depth(k) for k in keys]
        assert one != two

    def test_same_plan_replays_the_same_degraded_report(self, fault_world):
        plan = FaultPlan.transient_net(rate=0.25, seed=5)
        first = Study.from_world(fault_world, faults=plan).run()
        second = Study.from_world(fault_world, faults=plan).run()
        assert first == second
        assert_reports_identical(first, second)


# -- the masking invariant ---------------------------------------------------------


class TestMaskingInvariant:
    def test_transient_net_masked_serial(self, fault_world, baseline):
        plan = FaultPlan.transient_net(rate=0.25, seed=5)
        report = Study.from_world(
            fault_world, faults=plan, retry_policy=DEFAULT_MASKING_POLICY
        ).run()
        assert report == baseline
        assert_reports_identical(report, baseline)
        assert report.stats.fetch_retries > 0
        assert report.stats.total_giveups == 0
        assert report.stats.backoff_ms > 0.0

    def test_transient_everywhere_masked_serial(self, fault_world, baseline):
        plan = FaultPlan.transient_everywhere(rate=0.2, seed=5)
        assert plan.transient_only
        report = Study.from_world(
            fault_world, faults=plan, retry_policy=DEFAULT_MASKING_POLICY
        ).run()
        assert report == baseline
        assert_reports_identical(report, baseline)
        assert report.stats.fetch_retries > 0
        assert report.stats.cdx_retries > 0
        assert report.stats.total_giveups == 0

    def test_transient_everywhere_masked_parallel(self, fault_world, baseline):
        plan = FaultPlan.transient_everywhere(rate=0.2, seed=5)
        report = Study.from_world(
            fault_world, faults=plan, retry_policy=DEFAULT_MASKING_POLICY
        ).run(StudyExecutor(workers=3))
        assert report == baseline
        assert_reports_identical(report, baseline)
        assert report.stats.shards == 3
        assert report.stats.total_retries > 0
        assert report.stats.total_giveups == 0

    def test_exactly_required_depth_suffices(self, fault_world, baseline):
        plan = FaultPlan.transient_everywhere(rate=0.2, seed=9, max_repeats=3)
        policy = RetryPolicy(max_retries=plan.required_retries())
        assert policy.max_retries == 6  # cdx error + rate-limit depths stack
        report = Study.from_world(
            fault_world, faults=plan, retry_policy=policy
        ).run()
        assert report == baseline
        assert report.stats.total_giveups == 0


# -- retry-less degradation --------------------------------------------------------


class TestRetrylessDegradation:
    def test_net_faults_confined_to_figure4_buckets(self, fault_world, baseline):
        plan = FaultPlan.transient_net(rate=0.25, seed=5)
        degraded = Study.from_world(fault_world, faults=plan).run()
        assert degraded != baseline
        moved = assert_degradation_confined(baseline, degraded)
        assert moved > 0
        assert degraded.stats.total_retries == 0
        assert degraded.stats.total_giveups == 0

    def test_unretried_cdx_faults_crash_the_pipeline(self, fault_world):
        plan = FaultPlan.transient_archive(rate=0.2, seed=5)
        with pytest.raises((CdxRateLimited, ArchiveUnavailable)):
            Study.from_world(fault_world, faults=plan).run()

    def test_permanent_faults_defeat_retries(self, fault_world, baseline):
        plan = FaultPlan(
            seed=5,
            dns_servfail=FaultSpec(rate=0.25, permanent=True),
        )
        assert not plan.transient_only
        degraded = Study.from_world(
            fault_world, faults=plan, retry_policy=DEFAULT_MASKING_POLICY
        ).run()
        assert degraded != baseline
        moved = assert_degradation_confined(baseline, degraded)
        assert moved > 0
        assert degraded.stats.fetch_giveups > 0


# -- availability-channel faults ---------------------------------------------------


class TestAvailabilityFaults:
    def _sample_lookups(self, world, client, n=60):
        records = []
        for site in sorted(world.web.sites(), key=lambda s: s.hostname)[:n]:
            for page in site.pages()[:1]:
                url = f"http://{site.hostname}{page.path_query}"
                records.append(
                    (url, client.find_copy(url, world.study_time))
                )
        return records

    def test_spikes_push_bounded_lookups_over_timeout(self, fault_world):
        plan = FaultPlan(
            seed=3, availability_spike=FaultSpec(rate=1.0, max_repeats=1)
        )
        api = faulty_availability(fault_world.availability, plan)
        assert isinstance(api, FaultyAvailabilityApi)
        client = IABotArchiveClient(api, timeout_ms=1.0)
        results = self._sample_lookups(fault_world, client)
        assert all(copy is None for _, copy in results)
        assert client.timeouts == len(results)
        assert api.injected > 0

    def test_error_bursts_masked_by_retry(self, fault_world):
        clean = IABotArchiveClient(fault_world.availability, timeout_ms=None)
        expected = dict(self._sample_lookups(fault_world, clean))

        plan = FaultPlan(
            seed=3, availability_error=FaultSpec(rate=0.4, max_repeats=2)
        )
        api = faulty_availability(fault_world.availability, plan)
        retried = IABotArchiveClient(
            api,
            timeout_ms=None,
            retry_policy=RetryPolicy(max_retries=plan.required_retries()),
        )
        observed = dict(self._sample_lookups(fault_world, retried))
        assert observed == expected
        assert api.injected > 0
        assert retried.retry_counters.retries == api.injected
        assert retried.retry_counters.giveups == 0
        assert retried.errors == 0

    def test_error_bursts_unretried_become_not_archived(self, fault_world):
        plan = FaultPlan(
            seed=3, availability_error=FaultSpec(rate=0.4, max_repeats=2)
        )
        api = faulty_availability(fault_world.availability, plan)
        client = IABotArchiveClient(api, timeout_ms=None)
        results = self._sample_lookups(fault_world, client)
        faulted = [url for url, copy in results if copy is None]
        assert client.errors > 0
        assert client.errors <= len(faulted)


# -- chaos tier: heavier sweeps ----------------------------------------------------


@pytest.mark.chaos
class TestChaosMatrix:
    @pytest.mark.parametrize("rate", [0.1, 0.3, 0.5])
    @pytest.mark.parametrize("plan_seed", [1, 2])
    def test_masking_holds_across_rates_and_seeds(
        self, fault_world, baseline, rate, plan_seed
    ):
        plan = FaultPlan.transient_everywhere(rate=rate, seed=plan_seed)
        report = Study.from_world(
            fault_world, faults=plan, retry_policy=DEFAULT_MASKING_POLICY
        ).run()
        assert report == baseline
        assert report.stats.total_giveups == 0

    def test_masking_holds_sharded_at_high_rate(self, fault_world, baseline):
        plan = FaultPlan.transient_everywhere(rate=0.5, seed=4, max_repeats=3)
        report = Study.from_world(
            fault_world, faults=plan, retry_policy=DEFAULT_MASKING_POLICY
        ).run(StudyExecutor(workers=4))
        assert report == baseline
        assert report.stats.total_giveups == 0

    def test_degradation_grows_with_rate(self, fault_world, baseline):
        # Same plan seed: a key faulted at rate r is faulted at every
        # rate above r (the hit draw is thresholded), so the set of
        # failed probes — and the moved count — grows monotonically.
        moved = []
        for rate in (0.1, 0.3, 0.5):
            plan = FaultPlan.transient_net(rate=rate, seed=5)
            degraded = Study.from_world(fault_world, faults=plan).run()
            moved.append(assert_degradation_confined(baseline, degraded))
        assert moved == sorted(moved)
        assert moved[-1] > moved[0]
