"""Tests for robots.txt support across web, crawler, and builder."""

import pytest

from repro.archive.crawler import ArchiveCrawler
from repro.archive.store import SnapshotStore
from repro.clock import SimTime
from repro.web.page import Page
from repro.web.robots import RobotsRules, parse_robots
from repro.web.site import Site
from repro.web.world import LiveWeb

T2005 = SimTime.from_ymd(2005, 1, 1)
T2008 = SimTime.from_ymd(2008, 1, 1)
T2012 = SimTime.from_ymd(2012, 1, 1)


class TestRobotsRules:
    def test_empty_allows_everything(self):
        assert RobotsRules().allows("/anything")
        assert not RobotsRules().restricts_anything

    def test_disallow_prefix(self):
        rules = RobotsRules(disallow=("/private/",))
        assert not rules.allows("/private/page.html")
        assert rules.allows("/public/page.html")

    def test_allow_overrides_longer_match(self):
        rules = RobotsRules(disallow=("/a/",), allow=("/a/open/",))
        assert not rules.allows("/a/x.html")
        assert rules.allows("/a/open/x.html")

    def test_prefix_validation(self):
        with pytest.raises(ValueError):
            RobotsRules(disallow=("private",))

    def test_render_parse_roundtrip(self):
        rules = RobotsRules(disallow=("/scripts/", "/tmp/"), allow=("/scripts/ok/",))
        parsed = parse_robots(rules.render())
        assert parsed == rules


class TestParseRobots:
    def test_basic(self):
        rules = parse_robots("User-agent: *\nDisallow: /cgi-bin/\n")
        assert rules.disallow == ("/cgi-bin/",)

    def test_comments_and_blank_lines(self):
        rules = parse_robots(
            "# header\n\nUser-agent: *\nDisallow: /a/  # trailing\n"
        )
        assert rules.disallow == ("/a/",)

    def test_other_agent_groups_ignored(self):
        rules = parse_robots(
            "User-agent: SpecialBot\nDisallow: /x/\n"
            "User-agent: *\nDisallow: /y/\n"
        )
        assert rules.disallow == ("/y/",)

    def test_empty_disallow_means_open(self):
        rules = parse_robots("User-agent: *\nDisallow:\n")
        assert rules.allows("/anything")

    def test_garbage_tolerated(self):
        rules = parse_robots("this is word soup not a robots file at all")
        assert rules == RobotsRules()


def _robots_web() -> LiveWeb:
    web = LiveWeb()
    site = Site(
        hostname="r.example.com",
        seed="robots",
        created_at=T2005,
        robots=RobotsRules(disallow=("/secret/",)),
    )
    site.add_page(Page(path_query="/secret/page.html", created_at=T2008))
    site.add_page(Page(path_query="/open/page.html", created_at=T2008))
    web.add_site(site)
    return web


class TestServing:
    def test_robots_txt_served(self):
        web = _robots_web()
        result = web.fetch("http://r.example.com/robots.txt", T2012)
        assert result.final_status == 200
        assert "Disallow: /secret/" in result.body

    def test_disallowed_page_still_reachable_by_browsers(self):
        # robots.txt restricts crawlers, not users.
        web = _robots_web()
        result = web.fetch("http://r.example.com/secret/page.html", T2012)
        assert result.final_status == 200


class TestCrawlerHonoursRobots:
    def test_disallowed_path_not_captured(self):
        web = _robots_web()
        store = SnapshotStore()
        crawler = ArchiveCrawler(web.fetcher(), store)
        assert crawler.capture("http://r.example.com/secret/page.html", T2012) is None
        assert crawler.robots_denied == 1
        assert len(store) == 0

    def test_allowed_path_captured(self):
        web = _robots_web()
        crawler = ArchiveCrawler(web.fetcher(), SnapshotStore())
        snap = crawler.capture("http://r.example.com/open/page.html", T2012)
        assert snap is not None and snap.initial_status == 200

    def test_robots_cache_reused(self):
        web = _robots_web()
        fetcher = web.fetcher()
        crawler = ArchiveCrawler(fetcher, SnapshotStore())
        crawler.capture("http://r.example.com/open/page.html", T2012)
        before = fetcher.fetch_count
        crawler.capture("http://r.example.com/open/other.html", T2012.plus_days(1))
        # One robots fetch total: the second capture reuses the cache.
        assert fetcher.fetch_count == before + 1

    def test_honor_robots_off(self):
        web = _robots_web()
        crawler = ArchiveCrawler(web.fetcher(), SnapshotStore(), honor_robots=False)
        snap = crawler.capture("http://r.example.com/secret/page.html", T2012)
        assert snap is not None

    def test_missing_robots_allows(self, micro_web):
        crawler = ArchiveCrawler(micro_web.fetcher(), SnapshotStore())
        snap = crawler.capture("http://news.example.com/stays/alive.html", T2012)
        assert snap is not None


class TestBuilderAssignsRobots:
    def test_isolated_query_dirs_disallowed(self, small_world):
        from repro.dataset.planner import Disposition
        from repro.urls.parse import parse_url

        found_one = False
        for url, truth in small_world.truth.items():
            if truth.disposition is not Disposition.QUERY_DEEP:
                continue
            site = small_world.web.site_by_hostname(truth.hostname)
            if site is None or not site.robots.restricts_anything:
                continue
            path = parse_url(url).path
            if not site.robots.allows(path):
                found_one = True
                break
        assert found_one
