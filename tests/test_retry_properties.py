"""Property tests for the retry/backoff schedule (repro.retry).

The retry layer underwrites the differential harness's masking
invariant, so its own guarantees get property-level coverage:
schedules are deterministic per (policy, key), every delay respects
the cap, the total never exceeds the budget, jitter only shrinks, and
the zero-retry default is *exactly* the call-once behaviour.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ArchiveUnavailable, DnsServfail, ReproError
from repro.retry import (
    RetryCounters,
    RetryPolicy,
    call_with_retry,
    is_transient,
)

policies = st.builds(
    RetryPolicy,
    max_retries=st.integers(min_value=0, max_value=16),
    base_delay_ms=st.floats(min_value=0.0, max_value=1_000.0),
    multiplier=st.floats(min_value=1.0, max_value=4.0),
    max_delay_ms=st.floats(min_value=0.0, max_value=10_000.0),
    budget_ms=st.floats(min_value=0.0, max_value=100_000.0),
    jitter=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=2**32),
)

keys = st.text(min_size=1, max_size=40)


class _Flaky:
    """An operation that fails transiently ``failures`` times."""

    def __init__(self, failures: int, exc: Exception | None = None):
        self.remaining = failures
        self.calls = 0
        self.exc = exc if exc is not None else DnsServfail("x.example.com")

    def __call__(self) -> str:
        self.calls += 1
        if self.remaining > 0:
            self.remaining -= 1
            raise self.exc
        return "ok"


# -- schedule shape ----------------------------------------------------------------


class TestScheduleProperties:
    @given(policy=policies, key=keys)
    @settings(max_examples=80, deadline=None)
    def test_deterministic_per_policy_and_key(self, policy, key):
        assert policy.schedule(key) == policy.schedule(key)
        clone = RetryPolicy(**{
            f: getattr(policy, f)
            for f in (
                "max_retries", "base_delay_ms", "multiplier",
                "max_delay_ms", "budget_ms", "jitter", "seed",
            )
        })
        assert clone.schedule(key) == policy.schedule(key)

    @given(policy=policies, key=keys)
    @settings(max_examples=80, deadline=None)
    def test_bounded_by_cap_budget_and_attempts(self, policy, key):
        schedule = policy.schedule(key)
        assert len(schedule) <= policy.max_retries
        assert all(0.0 <= d <= policy.max_delay_ms for d in schedule)
        assert sum(schedule) <= policy.budget_ms

    @given(policy=policies, key=keys)
    @settings(max_examples=80, deadline=None)
    def test_jitter_only_shrinks(self, policy, key):
        unjittered = RetryPolicy(
            max_retries=policy.max_retries,
            base_delay_ms=policy.base_delay_ms,
            multiplier=policy.multiplier,
            max_delay_ms=policy.max_delay_ms,
            budget_ms=policy.budget_ms,
            jitter=0.0,
            seed=policy.seed,
        )
        for attempt in range(policy.max_retries):
            raw = unjittered.delay_ms(key, attempt)
            jittered = policy.delay_ms(key, attempt)
            assert jittered <= raw
            assert jittered >= raw * (1.0 - policy.jitter) - 1e-9

    @given(key=keys, retries=st.integers(min_value=1, max_value=12))
    @settings(max_examples=50, deadline=None)
    def test_unjittered_schedule_is_monotone_until_capped(self, key, retries):
        policy = RetryPolicy(
            max_retries=retries,
            base_delay_ms=50.0,
            multiplier=2.0,
            max_delay_ms=800.0,
            budget_ms=1e9,
        )
        schedule = policy.schedule(key)
        assert len(schedule) == retries
        assert list(schedule) == sorted(schedule)
        assert schedule[-1] <= 800.0

    def test_invalid_policies_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(budget_ms=-1.0)


# -- call_with_retry ---------------------------------------------------------------


class TestCallWithRetry:
    @given(failures=st.integers(min_value=0, max_value=6))
    @settings(max_examples=40, deadline=None)
    def test_success_after_k_transients(self, failures):
        policy = RetryPolicy(max_retries=6, base_delay_ms=10.0, budget_ms=1e9)
        op = _Flaky(failures)
        counters = RetryCounters()
        assert call_with_retry(op, policy, key="k", counters=counters) == "ok"
        assert op.calls == failures + 1
        assert counters.retries == failures
        assert counters.giveups == 0
        assert counters.backoff_ms == pytest.approx(
            sum(policy.schedule("k")[:failures])
        )

    @given(extra=st.integers(min_value=1, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_exhaustion_gives_up_with_exact_accounting(self, extra):
        policy = RetryPolicy(max_retries=3, base_delay_ms=10.0, budget_ms=1e9)
        op = _Flaky(policy.max_retries + extra)
        counters = RetryCounters()
        with pytest.raises(DnsServfail):
            call_with_retry(op, policy, key="k", counters=counters)
        assert op.calls == policy.max_retries + 1
        assert counters.retries == policy.max_retries
        assert counters.giveups == 1
        assert counters.backoff_ms == pytest.approx(sum(policy.schedule("k")))

    def test_budget_bites_before_attempt_limit(self):
        # Delays 100, 200, 400…: a 250ms budget grants only the first.
        policy = RetryPolicy(max_retries=10, base_delay_ms=100.0, budget_ms=250.0)
        assert policy.schedule("k") == (100.0,)
        op = _Flaky(10)
        counters = RetryCounters()
        with pytest.raises(DnsServfail):
            call_with_retry(op, policy, key="k", counters=counters)
        assert op.calls == 2
        assert counters.retries == 1 and counters.giveups == 1

    @given(policy=st.one_of(st.none(), st.just(RetryPolicy(max_retries=0))))
    @settings(max_examples=10, deadline=None)
    def test_zero_retry_is_exactly_call_once(self, policy):
        op = _Flaky(0)
        counters = RetryCounters()
        assert call_with_retry(op, policy, key="k", counters=counters) == "ok"
        assert op.calls == 1
        assert counters == RetryCounters()

        marker = DnsServfail("dead.example.com")
        failing = _Flaky(99, exc=marker)
        with pytest.raises(DnsServfail) as caught:
            call_with_retry(failing, policy, key="k", counters=counters)
        # The very exception object propagates untouched, first try.
        assert caught.value is marker
        assert failing.calls == 1
        assert counters == RetryCounters()

    def test_non_transient_exceptions_never_retried(self):
        policy = RetryPolicy(max_retries=5, base_delay_ms=10.0)
        op = _Flaky(3, exc=ValueError("not ours"))
        counters = RetryCounters()
        with pytest.raises(ValueError):
            call_with_retry(op, policy, key="k", counters=counters)
        assert op.calls == 1
        assert counters == RetryCounters()

    def test_custom_retryable_predicate_overrides_default(self):
        policy = RetryPolicy(max_retries=5, base_delay_ms=10.0)
        op = _Flaky(2, exc=ValueError("flaky dependency"))
        counters = RetryCounters()
        result = call_with_retry(
            op,
            policy,
            key="k",
            counters=counters,
            retryable=lambda exc: isinstance(exc, ValueError),
        )
        assert result == "ok"
        assert counters.retries == 2


# -- transience classification -----------------------------------------------------


class TestIsTransient:
    def test_library_transients_are_flagged(self):
        assert is_transient(DnsServfail("x.example.com"))
        assert is_transient(ArchiveUnavailable("cdx"))
        assert not is_transient(ReproError("generic"))
        assert not is_transient(ValueError("foreign"))

    def test_counters_merge_adds_componentwise(self):
        a = RetryCounters(retries=2, giveups=1, backoff_ms=300.0)
        a.merge(RetryCounters(retries=3, giveups=0, backoff_ms=50.0))
        assert a == RetryCounters(retries=5, giveups=1, backoff_ms=350.0)
