"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_study(self, capsys):
        assert main(["study", "--links", "400", "--seed", "6"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "permanently dead links studied" in out

    def test_study_markdown(self, tmp_path, capsys):
        path = str(tmp_path / "report.md")
        assert main(
            ["study", "--links", "400", "--seed", "6", "--markdown", path]
        ) == 0
        with open(path, encoding="utf-8") as handle:
            document = handle.read()
        assert document.startswith("# Study report")
        assert "## Paper vs measured" in document

    def test_medic(self, capsys):
        assert main(["medic", "--links", "400", "--seed", "6"]) == 0
        out = capsys.readouterr().out
        assert "patched" in out and "category" in out

    def test_live(self, tmp_path, capsys):
        import json

        path = str(tmp_path / "live.json")
        assert main(
            [
                "live", "--links", "400", "--seed", "6",
                "--generations", "3", "--requests", "300", "--json", path,
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "gen 3" in out
        assert "zero-downtime swaps: 2" in out
        assert "freshness SLO" in out
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        assert len(payload["generations"]) == 3
        assert payload["generations"][0]["dirty"] > payload[
            "generations"
        ][1]["dirty"]
        assert len(payload["served_by_generation"]) == 3

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
