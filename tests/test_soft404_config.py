"""Additional soft-404 detector behaviour tests."""

from repro.analysis.soft404 import Soft404Detector
from repro.clock import SimTime
from repro.rng import Stream
from repro.web.behaviors import MissingPagePolicy, SiteState
from repro.web.page import Page
from repro.web.site import Site
from repro.web.world import LiveWeb

T2005 = SimTime.from_ymd(2005, 1, 1)
T2008 = SimTime.from_ymd(2008, 1, 1)
T2022 = SimTime.from_ymd(2022, 3, 15)


def _web(policy=MissingPagePolicy.HARD_404, offsite=None) -> LiveWeb:
    web = LiveWeb()
    site = Site(
        hostname="d.example.com",
        seed="det",
        created_at=T2005,
        missing_policy=policy,
        offsite_redirect_target=offsite,
    )
    site.add_page(Page(path_query="/real/live.html", created_at=T2008))
    web.add_site(site)
    return web


class TestDetectorConfiguration:
    def test_threshold_is_configurable(self):
        web = _web(policy=MissingPagePolicy.SOFT_404)
        # A threshold above 1.0 can never fire the similarity rule, so
        # the soft-404 goes undetected — proving the rule is live.
        lax = Soft404Detector(web.fetcher(), Stream(1), threshold=1.01)
        verdict = lax.check("http://d.example.com/real/gone.html", T2022)
        assert verdict.genuinely_alive

    def test_verdict_carries_probe_url(self):
        web = _web()
        detector = Soft404Detector(web.fetcher(), Stream(2))
        verdict = detector.check("http://d.example.com/real/live.html", T2022)
        assert verdict.probe_url.startswith("http://d.example.com/real/")
        assert verdict.probe_url != verdict.url

    def test_login_redirect_exempted_from_rule_one(self):
        web = _web(policy=MissingPagePolicy.REDIRECT_LOGIN)
        detector = Soft404Detector(web.fetcher(), Stream(3))
        verdict = detector.check("http://d.example.com/real/gone.html", T2022)
        # Rule 1 (same redirect target) must NOT fire on a login wall;
        # rule 2 (identical login bodies) still catches it.
        assert verdict.broken
        assert "similar" in verdict.reason

    def test_offsite_redirect_detected(self):
        web = _web()
        target_site = Site(
            hostname="agg.example.net", seed="agg", created_at=T2005
        )
        web.add_site(target_site)
        offsite_web = LiveWeb()
        site = Site(
            hostname="sold.example.com",
            seed="sold",
            created_at=T2005,
            missing_policy=MissingPagePolicy.REDIRECT_OFFSITE,
            offsite_redirect_target="http://agg.example.net/",
        )
        offsite_web.add_site(site)
        offsite_web.add_site(
            Site(hostname="agg.example.net", seed="agg2", created_at=T2005)
        )
        detector = Soft404Detector(offsite_web.fetcher(), Stream(4))
        verdict = detector.check("http://sold.example.com/old/page.html", T2022)
        assert verdict.broken
        assert "same redirect target" in verdict.reason

    def test_parked_after_dns_reregistration(self):
        web = LiveWeb()
        original = Site(
            hostname="p.example.com",
            seed="orig",
            created_at=T2005,
            dns_dies_at=SimTime.from_ymd(2015, 1, 1),
        )
        web.add_site(original)
        web.add_parked_successor(
            original,
            Site(
                hostname="p.example.com",
                seed="squat",
                created_at=SimTime.from_ymd(2018, 1, 1),
                state=SiteState(parked_from=SimTime.from_ymd(2018, 1, 1)),
            ),
        )
        detector = Soft404Detector(web.fetcher(), Stream(5))
        verdict = detector.check("http://p.example.com/whatever.html", T2022)
        assert verdict.broken
        assert verdict.similarity is not None and verdict.similarity > 0.99
