"""Property-based tests for the wikitext layer."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wiki.templates import cite_web, dead_link, month_year
from repro.wiki.wikitext import (
    Template,
    extract_link_refs,
    parse_templates,
)
from repro.clock import SimTime

_param_key = st.text(
    alphabet=string.ascii_lowercase + "-", min_size=1, max_size=10
).filter(lambda s: s.strip("-"))
_param_value = st.text(
    alphabet=string.ascii_letters + string.digits + " ./:-_", max_size=24
).map(str.strip)
_template_name = st.sampled_from(
    ["cite web", "cite news", "dead link", "webarchive", "infobox thing"]
)
_url_leaf = st.text(alphabet=string.ascii_lowercase + string.digits, min_size=1, max_size=12)


@st.composite
def templates(draw):
    name = draw(_template_name)
    n_params = draw(st.integers(min_value=0, max_value=5))
    params = []
    for _ in range(n_params):
        key = draw(_param_key)
        value = draw(_param_value)
        params.append((key, value))
    return Template(name=name, params=tuple(params))


class TestTemplateRoundTrip:
    @given(templates())
    @settings(max_examples=150)
    def test_render_parse_roundtrip(self, template):
        parsed = parse_templates(template.render())
        assert len(parsed) == 1
        out = parsed[0]
        assert out.normalized_name == template.normalized_name
        for key, value in template.params:
            # Last-wins on duplicate keys matches MediaWiki behaviour;
            # every key must at least resolve to one of its values.
            candidates = [v for k, v in template.params if k == key]
            assert out.get(key) in candidates

    @given(st.lists(templates(), min_size=1, max_size=4))
    @settings(max_examples=60)
    def test_sibling_templates_all_found(self, items):
        text = " and ".join(t.render() for t in items)
        parsed = parse_templates(text)
        assert len(parsed) == len(items)
        assert [t.normalized_name for t in parsed] == [
            t.normalized_name for t in items
        ]


class TestLinkRefProperties:
    @given(_url_leaf, st.integers(min_value=2004, max_value=2021))
    @settings(max_examples=80)
    def test_cite_plus_marking_always_permadead(self, leaf, year):
        url = f"http://example.org/a/{leaf}.html"
        at = SimTime.from_ymd(year, 6, 15)
        text = (
            "* " + cite_web(url, "t").render()
            + dead_link(at, "InternetArchiveBot").render()
        )
        (ref,) = extract_link_refs(text)
        assert ref.url == url
        assert ref.is_permanently_dead
        assert ref.marked_by == "InternetArchiveBot"
        # The span must cover exactly the reference plus annotation.
        assert text[ref.span[0]: ref.span[1]].count("{{") == 2

    @given(st.lists(_url_leaf, min_size=1, max_size=6, unique=True))
    @settings(max_examples=60)
    def test_extraction_order_and_count(self, leaves):
        text = "\n".join(
            f"* [http://example.org/x/{leaf} ref {i}]"
            for i, leaf in enumerate(leaves)
        )
        refs = extract_link_refs(text)
        assert [r.url for r in refs] == [
            f"http://example.org/x/{leaf}" for leaf in leaves
        ]

    @given(st.integers(min_value=2004, max_value=2022), st.integers(min_value=1, max_value=12))
    def test_month_year_stable(self, year, month):
        stamp = month_year(SimTime.from_ymd(year, month, 3))
        assert str(year) in stamp
        assert stamp.split()[0] in (
            "January", "February", "March", "April", "May", "June", "July",
            "August", "September", "October", "November", "December",
        )
