"""Golden snapshot test for the end-to-end Markdown report.

Re-renders the study of the pinned golden world and compares it
byte-for-byte against the committed snapshot. This is the broadest
regression net in the suite: any change to world generation, sampling,
the analysis pipeline, ECDF/plot rendering, or the report template
shows up here as a diff. Intentional changes regenerate the snapshot::

    python scripts/full_run.py --update-golden
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.reporting.golden import (
    GOLDEN_RELPATH,
    GOLDEN_TITLE,
    golden_path,
    render_golden_report,
    update_golden,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def rendered() -> str:
    """One render of the golden study, shared by every check."""
    return render_golden_report()


class TestGoldenSnapshot:
    def test_matches_committed_snapshot_byte_for_byte(self, rendered):
        path = golden_path(REPO_ROOT)
        assert path.exists(), (
            f"golden snapshot missing at {GOLDEN_RELPATH}; generate it "
            "with: python scripts/full_run.py --update-golden"
        )
        committed = path.read_text(encoding="utf-8")
        assert rendered == committed, (
            "study report drifted from the golden snapshot — if the "
            "change is intentional, regenerate with: "
            "python scripts/full_run.py --update-golden"
        )

    def test_render_is_deterministic(self, rendered):
        assert render_golden_report() == rendered

    def test_report_shape(self, rendered):
        assert rendered.startswith(f"# {GOLDEN_TITLE}\n")
        assert rendered.endswith("\n")
        for heading in (
            "## Dataset",
            "## Figure 3 — dataset characterisation",
            "## Figure 4 — live-web status today",
            "## §3 — are permanently dead links indeed dead?",
            "## §4 — what archived copies exist?",
            "## §5 — why no successful archived copies?",
            "## Paper vs measured",
        ):
            assert heading in rendered, heading

    def test_update_golden_round_trips(self, rendered, tmp_path):
        written = update_golden(tmp_path)
        assert written == tmp_path / GOLDEN_RELPATH
        assert written.read_text(encoding="utf-8") == rendered
