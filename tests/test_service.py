"""Tests for repro.service — index, batching, caching, admission, serving.

The contracts pinned here, in rough dependency order:

- the index is immutable and content-hash-versioned: rebuilds agree,
  measurement changes move the version, provenance-cost changes don't;
- aggregate endpoints agree byte-for-byte with the batch report;
- duplicate in-flight queries coalesce into exactly one index lookup;
- the result cache expires on the virtual clock, not the wall clock;
- admission control sheds a deterministic, reproducible *set* of
  request ids, FIFO-fairly;
- serial and thread-pool serving return identical responses;
- fault plans degrade latency and hit rate only — never bodies,
  statuses, or the shed set.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.obs.trace import Tracer
from repro.reporting.cdf import ecdf
from repro.service import (
    AdmissionController,
    LinkStatusEntry,
    LinkStatusIndex,
    LinkStatusService,
    MicroBatcher,
    Request,
    ResultCache,
    ServerConfig,
    ServiceFaultPlan,
    TokenBucket,
    WorkloadConfig,
    generate_workload,
)
from repro.service.server import answer


# -- helpers ---------------------------------------------------------------------


def make_entry(url: str, bucket: str = "404", **over) -> LinkStatusEntry:
    """A minimal hand-built index entry for unit tests."""
    hostname = url.split("/")[2]
    fields = dict(
        url=url,
        hostname=hostname,
        domain=".".join(hostname.split(".")[-2:]),
        bucket=bucket,
        final_status=200 if bucket == "200" else 404,
        redirected=False,
        genuinely_alive=False,
        has_pre_marking_200=False,
        has_pre_marking_3xx=False,
        has_any_copy=False,
        has_valid_redirect_copy=False,
        first_post_marking_erroneous=None,
        typo_correction=None,
        posting_year=2010.0,
        site_ranking=None,
    )
    fields.update(over)
    return LinkStatusEntry(**fields)


def tiny_index(n: int = 8) -> LinkStatusIndex:
    return LinkStatusIndex(
        entries=tuple(
            make_entry(f"http://site{i}.example.com/page-{i}.html")
            for i in range(n)
        ),
        gap_days=(1.0, 2.0, 30.0),
    )


def url_requests(specs) -> list[Request]:
    """Requests from ``(arrival_ms, url)`` pairs, ids in list order."""
    return [
        Request(request_id=i, arrival_ms=ms, kind="url", target=url)
        for i, (ms, url) in enumerate(specs)
    ]


@pytest.fixture(scope="session")
def service_index(small_report) -> LinkStatusIndex:
    """The index snapshot of the shared small study (read-only)."""
    return LinkStatusIndex.build(small_report)


# -- index: immutability and versioning ------------------------------------------


def test_index_version_shape_and_rebuild_stability(small_report, service_index):
    assert service_index.version.startswith("lsi-")
    assert len(service_index.version) == len("lsi-") + 16
    rebuilt = LinkStatusIndex.build(small_report)
    assert rebuilt.version == service_index.version
    assert len(rebuilt) == len(service_index) == len(small_report.dataset.records)


def test_index_version_tracks_measurement_not_provenance():
    base = tiny_index()
    # A measurement change (different bucket) must move the version.
    changed = dataclasses.replace(base.entries[0], bucket="200", final_status=200)
    reindexed = LinkStatusIndex(
        entries=(changed,) + base.entries[1:], gap_days=(1.0, 2.0, 30.0)
    )
    assert reindexed.version != base.version
    # A provenance-cost change (cache-hit split) must NOT move it.
    cheaper = dataclasses.replace(base.entries[0], fetches=99, retries=7)
    same = LinkStatusIndex(
        entries=(cheaper,) + base.entries[1:], gap_days=(1.0, 2.0, 30.0)
    )
    assert same.version == base.version


def test_index_is_immutable(service_index):
    entry = service_index.entries[0]
    with pytest.raises(dataclasses.FrozenInstanceError):
        entry.bucket = "other"
    assert isinstance(service_index.entries, tuple)
    # Aggregates hand out copies: mutating one doesn't leak back.
    counts = service_index.bucket_counts()
    counts["404"] = -1
    assert service_index.bucket_counts() != counts


def test_index_requires_outcomes(small_report):
    stripped = dataclasses.replace(small_report, outcomes=None)
    with pytest.raises(ValueError, match="outcomes"):
        LinkStatusIndex.build(stripped)


# -- index: aggregate endpoints byte-match the batch report ----------------------


def test_bucket_counts_byte_match_batch_report(small_report, service_index):
    batch = {outcome.value: n for outcome, n in small_report.counts.items()}
    assert service_index.bucket_counts() == batch


def test_quantiles_byte_match_batch_report(small_report, service_index):
    gap_cdf = ecdf(small_report.temporal.gaps_days)
    year_cdf = ecdf(
        [o.record.posted_at.fractional_year() for o in small_report.outcomes]
    )
    for q in (0.1, 0.25, 0.5, 0.9, 0.99):
        assert service_index.quantile("gap_days", q) == gap_cdf.quantile(q)
        assert service_index.quantile("posting_year", q) == year_cdf.quantile(q)


def test_lookup_and_domain_queries(service_index, small_report):
    record = small_report.dataset.records[0]
    entry = service_index.lookup(record.url)
    assert entry is not None and entry.url == record.url
    assert entry in service_index.by_domain(record.domain)
    assert service_index.lookup("http://not-studied.invalid/") is None


def test_answer_statuses(service_index):
    status, body = answer(service_index, "url", "http://nope.invalid/")
    assert (status, body) == (404, None)
    status, body = answer(service_index, "bucket_counts", "")
    assert status == 200 and body == service_index.bucket_counts()
    status, _ = answer(service_index, "quantile", "no_such_metric:0.5")
    assert status == 400
    status, _ = answer(service_index, "nonsense", "")
    assert status == 400


# -- batching and coalescing -----------------------------------------------------


def test_duplicate_in_flight_queries_share_one_lookup():
    index = tiny_index()
    url = index.entries[0].url
    service = LinkStatusService(index, ServerConfig(max_batch=4))
    result = service.serve(url_requests([(0.0, url)] * 4))
    assert service.metrics.counter("service.index.lookups").int_value == 1
    assert service.metrics.counter("service.batch.coalesced").int_value == 3
    assert [r.source for r in result.responses] == [
        "index", "coalesced", "coalesced", "coalesced",
    ]
    assert len({(r.status, str(r.body)) for r in result.responses}) == 1


def test_partial_batch_flushes_at_deadline():
    batcher = MicroBatcher(max_batch=8, max_wait_ms=5.0)
    assert batcher.add(object_request(0), 0.0) is None
    assert batcher.deadline_ms == 5.0
    assert batcher.flush_due(4.9) is None
    batch = batcher.flush_due(5.0)
    assert batch is not None and batch.flush_ms == 5.0
    assert batcher.pending == 0 and batcher.deadline_ms is None


def test_full_batch_flushes_immediately():
    batcher = MicroBatcher(max_batch=2, max_wait_ms=50.0)
    assert batcher.add(object_request(0), 1.0) is None
    batch = batcher.add(object_request(1), 3.0)
    assert batch is not None and batch.flush_ms == 3.0 and len(batch) == 2


def object_request(i: int) -> Request:
    return Request(
        request_id=i, arrival_ms=0.0, kind="url", target=f"http://h.example/{i}"
    )


# -- cache: LRU + virtual TTL ----------------------------------------------------


def test_cache_ttl_expires_on_virtual_clock():
    cache = ResultCache(capacity=4, ttl_ms=10.0)
    cache.put("k", (200, {"x": 1}), now_ms=0.0)
    assert cache.get("k", now_ms=9.999) == (200, {"x": 1})
    assert cache.get("k", now_ms=10.0) is None  # TTL is inclusive
    assert cache.expirations == 1
    assert cache.get("k", now_ms=10.0) is None  # gone, plain miss now
    assert cache.misses == 2 and cache.hits == 1


def test_cache_lru_eviction_order():
    cache = ResultCache(capacity=2, ttl_ms=None)
    cache.put("a", (200, 1), 0.0)
    cache.put("b", (200, 2), 1.0)
    assert cache.get("a", 2.0) is not None  # refresh a
    cache.put("c", (200, 3), 3.0)  # evicts b, the LRU entry
    assert cache.get("b", 4.0) is None
    assert cache.get("a", 4.0) is not None
    assert cache.evictions == 1


def test_service_cache_hit_then_virtual_expiry():
    index = tiny_index()
    url = index.entries[0].url
    config = ServerConfig(max_batch=8, max_wait_ms=2.0, cache_ttl_ms=10.0)
    service = LinkStatusService(index, config)
    result = service.serve(
        url_requests([(0.0, url), (5.0, url), (50.0, url)])
    )
    by_id = {r.request_id: r for r in result.responses}
    assert by_id[0].source == "index"   # cold lookup
    assert by_id[1].source == "cache"   # 5 ms later: fresh in cache
    assert by_id[2].source == "index"   # 48 ms after fill: expired
    assert service.metrics.counter("service.index.lookups").int_value == 2
    assert service.metrics.counter("service.cache.expirations").int_value == 1


# -- admission: token bucket, bounded queue, deterministic shedding --------------


def test_token_bucket_refill_round_trip():
    bucket = TokenBucket(rate_per_s=3.0, burst=1.0)
    assert bucket.try_take(0.0)
    assert not bucket.try_take(0.0)
    ready = bucket.next_ready_ms()
    assert ready > 0.0
    # The solved-for instant must actually admit (float round-trip).
    assert bucket.try_take(ready)


def test_admission_admit_queue_shed_progression():
    controller = AdmissionController(
        TokenBucket(rate_per_s=1.0, burst=1.0), queue_limit=2
    )
    verdicts = [
        controller.offer(object_request(i), now_ms=0.0) for i in range(4)
    ]
    assert verdicts == ["admit", "queue", "queue", "shed"]
    req, ready = controller.release_one()
    assert req.request_id == 1 and ready == pytest.approx(1000.0)
    # The release booked the queue wait (enqueue at 0, token at 1000).
    wait = controller.metrics.snapshot()["histograms"][
        "service.admission.queue_wait_ms"
    ]
    assert wait["count"] == 1
    assert wait["sum"] == pytest.approx(1000.0)


def test_shed_set_is_deterministic_and_reproducible(service_index):
    workload = generate_workload(
        [e.url for e in service_index.entries],
        WorkloadConfig(n_requests=800, offered_rps=4000.0, seed=11),
    )
    config = ServerConfig(rate_rps=1000.0, burst=4, queue_limit=16)
    runs = [
        LinkStatusService(service_index, config).serve(workload, mode=mode)
        for mode in ("serial", "serial", "thread")
    ]
    assert runs[0].shed_ids  # overload actually sheds
    assert runs[0].shed_ids == runs[1].shed_ids == runs[2].shed_ids
    for response in runs[0].responses:
        if response.shed:
            assert response.status == 429 and response.body is None


# -- server: serial ≡ thread, tracing --------------------------------------------


def mixed_workload(index: LinkStatusIndex, n: int = 600) -> tuple[Request, ...]:
    return generate_workload(
        [e.url for e in index.entries],
        WorkloadConfig(
            n_requests=n,
            offered_rps=2500.0,
            seed=7,
            aggregate_fraction=0.05,
            unknown_fraction=0.02,
        ),
    )


def test_serial_and_thread_modes_answer_identically(service_index):
    workload = mixed_workload(service_index)
    serial = LinkStatusService(service_index).serve(workload, mode="serial")
    threaded = LinkStatusService(service_index).serve(workload, mode="thread")
    assert serial.responses == threaded.responses
    assert serial.metrics.snapshot() == threaded.metrics.snapshot()


def test_unknown_serve_mode_rejected(service_index):
    with pytest.raises(ValueError, match="mode"):
        LinkStatusService(service_index).serve([], mode="fork")


def test_trace_hierarchy_service_request_lookup(service_index):
    tracer = Tracer()
    service = LinkStatusService(service_index, tracer=tracer)
    service.serve(mixed_workload(service_index, n=200))
    by_id = {span.span_id: span for span in tracer.spans}
    roots = [s for s in tracer.spans if s.kind == "service"]
    assert len(roots) == 1
    requests = [s for s in tracer.spans if s.kind == "service.request"]
    assert len(requests) == 200
    lookups = [s for s in tracer.spans if s.kind == "service.index"]
    assert len(lookups) == service.metrics.counter(
        "service.index.lookups"
    ).int_value
    # Every lookup span hangs under a request span under the root.
    for lookup in lookups:
        parent = by_id[lookup.parent_id]
        assert parent.kind == "service.request"
        assert by_id[parent.parent_id].kind == "service"
        assert lookup.virtual_ms > 0.0


# -- faults: degradation is bounded and documented -------------------------------


def test_fault_runs_degrade_only_latency_and_hit_rate(service_index):
    workload = mixed_workload(service_index)
    clean = LinkStatusService(service_index).serve(workload)
    spiky = LinkStatusService(
        service_index,
        faults=ServiceFaultPlan.spikes(rate=0.5, seed=3, spike_ms=200.0),
    ).serve(workload)
    flaky = LinkStatusService(
        service_index, faults=ServiceFaultPlan.flaky_cache(rate=0.5, seed=3)
    ).serve(workload)

    def observable(run):
        return [(r.request_id, r.status, str(r.body)) for r in run.responses]

    # Same answers, same shed set, under every plan.
    assert observable(clean) == observable(spiky) == observable(flaky)
    assert clean.shed_ids == spiky.shed_ids == flaky.shed_ids
    # Spikes move tail latency up; flaky cache moves hit rate down.
    assert spiky.latency_quantile(0.99) > clean.latency_quantile(0.99)
    assert spiky.metrics.counter("service.index.spikes").int_value > 0
    assert flaky.cache_hit_rate < clean.cache_hit_rate
    assert flaky.metrics.counter("service.cache.faults").int_value > 0


def test_fault_runs_are_replayable(service_index):
    workload = mixed_workload(service_index, n=300)
    plan = ServiceFaultPlan.spikes(rate=0.3, seed=9)
    first = LinkStatusService(service_index, faults=plan).serve(workload)
    second = LinkStatusService(service_index, faults=plan).serve(workload)
    assert first.responses == second.responses


# -- workload generator ----------------------------------------------------------


def test_workload_is_deterministic_and_zipf_headed(service_index):
    urls = [e.url for e in service_index.entries]
    config = WorkloadConfig(n_requests=1000, offered_rps=500.0, seed=5)
    first = generate_workload(urls, config)
    assert first == generate_workload(urls, config)
    assert [r.request_id for r in first] == list(range(1000))
    assert all(
        a.arrival_ms <= b.arrival_ms for a, b in zip(first, first[1:])
    )
    # Zipf head: rank-1 URL dominates any mid-tail URL.
    hits = {}
    for request in first:
        hits[request.target] = hits.get(request.target, 0) + 1
    assert hits.get(urls[0], 0) > hits.get(urls[len(urls) // 2], 0)


def test_workload_validates_config():
    with pytest.raises(ValueError):
        WorkloadConfig(n_requests=-1)
    with pytest.raises(ValueError):
        WorkloadConfig(offered_rps=0.0)
    with pytest.raises(ValueError):
        generate_workload([], WorkloadConfig())


# -- result digest ---------------------------------------------------------------


def test_service_result_digest_fields(service_index):
    result = LinkStatusService(service_index).serve(
        mixed_workload(service_index, n=300)
    )
    digest = result.as_dict()
    assert digest["offered"] == 300
    assert digest["served"] + digest["shed"] == 300
    assert digest["index_version"] == service_index.version
    assert 0.0 <= digest["cache_hit_rate"] <= 1.0
    assert digest["p99_ms"] >= digest["p50_ms"] > 0.0
    assert "shed" in result.summary() and service_index.version in result.summary()
