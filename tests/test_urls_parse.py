"""Tests for repro.urls.parse — the paper's URL definitions."""

import pytest

from repro.errors import UrlError
from repro.urls.parse import (
    ParsedUrl,
    QueryArgs,
    directory_prefix,
    hostname_of,
    normalize,
    parse_url,
)


class TestParseUrl:
    def test_basic(self):
        url = parse_url("http://www.example.com/a/b.html")
        assert url.scheme == "http"
        assert url.hostname == "www.example.com"
        assert url.path == "/a/b.html"
        assert url.query == ""

    def test_https(self):
        assert parse_url("https://example.com/").scheme == "https"

    def test_no_path_gets_root(self):
        assert parse_url("http://example.com").path == "/"

    def test_query_split(self):
        url = parse_url("http://e.com/x.asp?a=1&b=2")
        assert url.path == "/x.asp"
        assert url.query == "a=1&b=2"

    def test_question_mark_in_query_preserved(self):
        url = parse_url("http://e.com/x?a=1?b=2")
        assert url.query == "a=1?b=2"

    def test_scheme_case_insensitive(self):
        assert parse_url("HTTP://e.com/").scheme == "http"

    def test_rejects_other_schemes(self):
        with pytest.raises(UrlError):
            parse_url("ftp://example.com/file")

    def test_rejects_missing_scheme(self):
        with pytest.raises(UrlError):
            parse_url("www.example.com/page")

    def test_rejects_empty_hostname(self):
        with pytest.raises(UrlError):
            parse_url("http:///path")

    def test_rejects_non_string(self):
        with pytest.raises(UrlError):
            parse_url(123)  # type: ignore[arg-type]

    def test_str_roundtrip(self):
        original = "http://www.example.com/a/b.html?x=1"
        assert str(parse_url(original)) == original


class TestPaperDefinitions:
    def test_hostname_is_between_scheme_and_first_slash(self):
        # §2.4's exact definition, including ports.
        assert hostname_of("http://Example.COM:8080/a") == "example.com"

    def test_directory_prefix_until_last_slash(self):
        assert (
            directory_prefix("http://e.com/news/2011/story.html")
            == "http://e.com/news/2011/"
        )

    def test_directory_of_root_page(self):
        assert directory_prefix("http://e.com/story.html") == "http://e.com/"

    def test_query_does_not_affect_directory(self):
        assert (
            directory_prefix("http://e.com/a/b.asp?x=1/y")
            == "http://e.com/a/"
        )

    def test_leaf_includes_query(self):
        url = parse_url("http://e.com/a/b.asp?x=1")
        assert url.leaf == "b.asp?x=1"

    def test_with_leaf_builds_sibling(self):
        url = parse_url("http://e.com/a/b.html")
        sibling = url.with_leaf("zzz123")
        assert str(sibling) == "http://e.com/a/zzz123"
        assert sibling.directory == url.directory

    def test_with_leaf_carrying_query(self):
        url = parse_url("http://e.com/a/b.asp?x=1")
        sibling = url.with_leaf("c.asp?y=2")
        assert str(sibling) == "http://e.com/a/c.asp?y=2"

    def test_site_root(self):
        assert parse_url("http://e.com/a/b").site_root == "http://e.com/"


class TestNormalize:
    def test_lowercases_authority_only(self):
        assert (
            normalize("http://WWW.Example.com/CaseSensitive/Path")
            == "http://www.example.com/CaseSensitive/Path"
        )


class TestParsedUrlValidation:
    def test_path_must_start_with_slash(self):
        with pytest.raises(UrlError):
            ParsedUrl(scheme="http", hostname="e.com", path="x")

    def test_empty_hostname_rejected(self):
        with pytest.raises(UrlError):
            ParsedUrl(scheme="http", hostname="", path="/")


class TestQueryArgs:
    def test_parse_pairs(self):
        args = QueryArgs.parse("a=1&b=2")
        assert args.pairs == (("a", "1"), ("b", "2"))

    def test_parse_flag_without_value(self):
        assert QueryArgs.parse("flag").pairs == (("flag", ""),)

    def test_empty(self):
        assert len(QueryArgs.parse("")) == 0

    def test_order_insensitive_equivalence(self):
        a = QueryArgs.parse("a=1&b=2")
        b = QueryArgs.parse("b=2&a=1")
        assert a.equivalent(b)
        assert a.pairs != b.pairs

    def test_duplicates_preserved(self):
        args = QueryArgs.parse("a=1&a=2")
        assert len(args) == 2
