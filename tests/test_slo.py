"""Tests for the service-tier observability suite.

The contracts pinned here:

- **SLO math is exact.** Eligibility and goodness per SLI kind
  (availability counts a 429 as answered-with-policy, a 503 as
  unavailability; latency's denominator is answered requests only),
  error budgets are ``(1 - objective) x eligible`` to the float, and
  multi-window burn-rate alerts fire exactly where both sliding
  windows burn past the threshold.
- **Exemplars are deterministic.** The hash-ranked reservoir keeps
  the same exemplars regardless of observation order, merges by
  union-then-trim, and never changes a histogram's numeric surface.
- **Exposition is byte-stable.** Equal registry state renders to
  identical Prometheus text and canonical JSON; snapshot diffs are
  exact instrument-level deltas.
- **The audit log is part of the determinism contract.** Two
  same-seed cluster runs write byte-identical JSONL, and turning the
  whole observability stack on never moves a single wire byte.
- **Observability off is byte-identical to pre-PR.** The wire-surface
  hash of the standard test workload is pinned to the value the seed
  tree produced, for single node, cluster, and cluster-under-chaos.
- **Chaos attribution names the culprit.** An induced replica crash
  shows up in ``burn_attribution`` charged to the crashed replica
  under the ``crash`` channel, and ``scripts/slo_report.py`` prints
  and exits on it.
"""

from __future__ import annotations

import hashlib
import importlib.util
import json
from pathlib import Path

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BOUNDS_MS,
    BurnWindow,
    Exemplar,
    Histogram,
    MetricsRegistry,
    SloEvent,
    SloSpec,
    Tracer,
    burn_attribution,
    diff_snapshots,
    evaluate,
    events_from_audit,
    events_from_responses,
    histogram_quantile,
    prometheus_text,
    render_attribution,
    render_json,
)
from repro.service import (
    AuditLog,
    ClusterConfig,
    ClusterService,
    LinkStatusIndex,
    LinkStatusService,
    ServerConfig,
    ServiceFaultPlan,
    WorkloadConfig,
    generate_workload,
    read_audit_jsonl,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "slo_report", REPO_ROOT / "scripts" / "slo_report.py"
)
slo_report = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(slo_report)

#: sha256 over the request-id-ordered ``to_wire()`` bytes of the
#: standard test workload (1300-link world seed 42, 2000 requests at
#: 2500 rps seed 7) — the value the pre-observability tree produces.
#: Single node, 2x2 cluster, and 2x2 under crash chaos all serve this
#: exact surface; any observability hook that moves it is a bug.
PINNED_WIRE_SHA = (
    "1853075292dbfce5f7688dea8ca3ee23b068c0acadad1d223049d232c11a877c"
)

#: The chaos schedule the attribution tests induce: two crash windows
#: (s0r1 at ~91.5ms, s0r0 at ~230.2ms, 300ms each) inside the ~800
#: virtual ms the standard workload spans — both replicas of shard 0
#: are down together for part of it.
CRASH_PLAN = dict(rate=0.5, seed=3, horizon_ms=600.0, duration_ms=300.0)


def wire_sha(responses) -> str:
    digest = hashlib.sha256()
    for response in sorted(responses, key=lambda r: r.request_id):
        digest.update(response.to_wire())
    return digest.hexdigest()


@pytest.fixture(scope="module")
def service_index(small_report) -> LinkStatusIndex:
    return LinkStatusIndex.build(small_report)


@pytest.fixture(scope="module")
def workload(service_index):
    return generate_workload(
        [entry.url for entry in service_index.entries],
        WorkloadConfig(
            n_requests=2000,
            offered_rps=2500.0,
            seed=7,
            aggregate_fraction=0.05,
            unknown_fraction=0.05,
        ),
    )


# -- SLO math --------------------------------------------------------------------


class TestSloSpec:
    def test_rejects_unknown_kind_and_bad_objectives(self):
        with pytest.raises(ValueError, match="kind"):
            SloSpec(name="x", kind="uptime", objective=0.9)
        with pytest.raises(ValueError, match="objective"):
            SloSpec(name="x", kind="availability", objective=0.0)
        with pytest.raises(ValueError, match="objective"):
            SloSpec(name="x", kind="availability", objective=1.5)
        with pytest.raises(ValueError, match="threshold"):
            SloSpec(name="x", kind="latency", objective=0.9)

    def test_sli_denominators_and_goodness(self):
        ok = SloEvent(at_ms=10.0, status=200, latency_ms=5.0)
        not_found = SloEvent(at_ms=11.0, status=404, latency_ms=5.0)
        slow = SloEvent(at_ms=12.0, status=200, latency_ms=500.0)
        shed = SloEvent(at_ms=13.0, status=429, latency_ms=0.0)
        gave_up = SloEvent(at_ms=14.0, status=503, latency_ms=200.0)

        availability = SloSpec(name="a", kind="availability", objective=0.99)
        latency = SloSpec(
            name="l", kind="latency", objective=0.99, threshold_ms=250.0
        )
        shed_rate = SloSpec(name="s", kind="shed_rate", objective=0.95)

        # Availability: every request counts; only 5xx is bad. A 429
        # is an answered policy decision, a 503 is unavailability.
        assert all(availability.eligible(e) for e in (ok, shed, gave_up))
        assert availability.good(ok) and availability.good(shed)
        assert availability.good(not_found)
        assert not availability.good(gave_up)

        # Shed rate: every request counts; any shed (429 or 503) is bad.
        assert shed_rate.good(ok) and shed_rate.good(not_found)
        assert not shed_rate.good(shed)
        assert not shed_rate.good(gave_up)

        # Latency: answered requests only; the bar is threshold_ms.
        assert latency.eligible(ok) and latency.eligible(not_found)
        assert not latency.eligible(shed)
        assert not latency.eligible(gave_up)
        assert latency.good(ok)
        assert not latency.good(slow)

    def test_budget_arithmetic_is_exact(self):
        spec = SloSpec(name="a", kind="availability", objective=0.99)
        events = [
            SloEvent(at_ms=float(i), status=503 if i < 3 else 200,
                     latency_ms=1.0)
            for i in range(200)
        ]
        outcome = evaluate(events, (spec,)).outcome("a")
        assert outcome.eligible == 200
        assert outcome.bad == 3
        assert outcome.budget_total == pytest.approx(0.01 * 200)
        assert outcome.budget_consumed_fraction == pytest.approx(3 / 2.0)
        assert not outcome.met and outcome.verdict == "violated"

    def test_empty_run_meets_everything(self):
        report = evaluate(())
        assert report.met
        for outcome in report.outcomes:
            assert outcome.sli == 1.0 and outcome.eligible == 0

    def test_zero_budget_objective_one(self):
        spec = SloSpec(name="a", kind="availability", objective=1.0)
        good = [SloEvent(at_ms=1.0, status=200, latency_ms=1.0)]
        assert evaluate(good, (spec,)).outcome("a").budget_consumed_fraction == 0.0
        bad = good + [SloEvent(at_ms=2.0, status=503, latency_ms=1.0)]
        outcome = evaluate(bad, (spec,)).outcome("a")
        assert outcome.budget_consumed_fraction == 1.0  # reports the count
        assert not outcome.met


class TestBurnAlerts:
    @staticmethod
    def run(statuses, spacing_ms=100.0, objective=0.99):
        events = [
            SloEvent(at_ms=spacing_ms * (i + 1), status=status,
                     latency_ms=1.0)
            for i, status in enumerate(statuses)
        ]
        spec = SloSpec(name="a", kind="availability", objective=objective)
        return evaluate(events, (spec,)).outcome("a")

    def test_clean_run_never_alerts(self):
        assert self.run([200] * 100).alerts == ()

    def test_fault_burst_fires_page_alert_inside_the_burst(self):
        # 20 good, 10 bad, 10 good: the page window (5000ms long /
        # 500ms short, 14.4x) must fire while the burst burns and
        # nowhere before it.
        statuses = [200] * 20 + [503] * 10 + [200] * 10
        outcome = self.run(statuses)
        pages = [a for a in outcome.alerts if a.window.severity == "page"]
        assert pages, "burst did not fire the page alert"
        alert = pages[0]
        burst_start = 100.0 * 21  # first bad completion instant
        assert alert.start_ms >= burst_start
        assert alert.peak_burn >= alert.window.threshold
        # And the alert interval is deterministic: same events, same
        # alerts, byte for byte.
        again = self.run(statuses)
        assert [a.to_dict() for a in again.alerts] == [
            a.to_dict() for a in outcome.alerts
        ]

    def test_slow_trickle_stays_under_the_page_threshold(self):
        # 1-in-50 failures is a 2x burn against a 1% budget — enough
        # to eventually violate nothing and never reach 14.4x.
        statuses = ([200] * 49 + [503]) * 4
        outcome = self.run(statuses)
        assert [a for a in outcome.alerts if a.window.severity == "page"] == []

    def test_short_window_gates_stale_long_burn(self):
        # A long-ago burst keeps the long window hot while the short
        # window drains: once the short window is clean, the alert
        # must stop firing (the "are we still burning" gate).
        statuses = [503] * 10 + [200] * 90
        outcome = self.run(statuses, spacing_ms=100.0)
        for alert in outcome.alerts:
            # No alert interval may extend past the point where the
            # short window has fully drained of bad events.
            drained = 100.0 * 10 + alert.window.short_ms
            assert alert.end_ms <= drained


# -- exemplars and quantiles -----------------------------------------------------


class TestExemplars:
    def test_reservoir_is_order_independent(self):
        observations = [(float(i % 7) + 0.1, f"rid={i}") for i in range(40)]
        forward = Histogram("h", (1.0, 5.0, 10.0))
        backward = Histogram("h", (1.0, 5.0, 10.0))
        for value, key in observations:
            forward.observe(value, exemplar=key, at_ms=value)
        for value, key in reversed(observations):
            backward.observe(value, exemplar=key, at_ms=value)
        assert forward.exemplars == backward.exemplars
        assert forward.counts == backward.counts

    def test_capacity_bounds_every_bucket(self):
        histogram = Histogram("h", (10.0,), exemplar_capacity=3)
        for i in range(100):
            histogram.observe(1.0, exemplar=f"rid={i}")
        (reservoir,) = histogram.exemplars.values()
        assert len(reservoir) == 3
        # Kept set = the 3 smallest hash ranks over all 100 offers.
        expected = sorted(
            (Exemplar(value=1.0, key=f"rid={i}") for i in range(100)),
            key=lambda e: (e.rank, e.key, e.value),
        )[:3]
        assert reservoir == expected

    def test_merge_unions_then_trims(self):
        left = Histogram("h", (10.0,))
        right = Histogram("h", (10.0,))
        for i in range(10):
            (left if i % 2 else right).observe(1.0, exemplar=f"rid={i}")
        direct = Histogram("h", (10.0,))
        for i in range(10):
            direct.observe(1.0, exemplar=f"rid={i}")
        left.merge(right)
        assert left.exemplars == direct.exemplars

    def test_exemplars_never_move_the_numeric_surface(self):
        plain = Histogram("h", DEFAULT_LATENCY_BOUNDS_MS)
        tagged = Histogram("h", DEFAULT_LATENCY_BOUNDS_MS)
        for i in range(50):
            value = float(i)
            plain.observe(value)
            tagged.observe(value, exemplar=f"rid={i}", at_ms=value)
        assert plain.counts == tagged.counts
        assert plain.sum == tagged.sum
        assert plain.quantile(0.99) == tagged.quantile(0.99)

    def test_snapshot_only_carries_exemplars_when_present(self):
        registry = MetricsRegistry()
        registry.histogram("plain", (1.0,)).observe(0.5)
        registry.histogram("tagged", (1.0,)).observe(0.5, exemplar="rid=1")
        snapshot = registry.snapshot()
        assert "exemplars" not in snapshot["histograms"]["plain"]
        assert snapshot["histograms"]["tagged"]["exemplars"]["0"][0]["key"] == "rid=1"


class TestHistogramQuantile:
    def test_interpolates_within_the_bucket(self):
        # 10 observations in [0, 10): the median estimate lands at the
        # ceil-rank point linearly interpolated across the bucket.
        bounds = (10.0, 20.0)
        counts = (10, 0, 0)
        assert histogram_quantile(bounds, counts, 0.5) == pytest.approx(5.0)
        assert histogram_quantile(bounds, counts, 1.0) == pytest.approx(10.0)

    def test_overflow_clamps_to_last_bound(self):
        bounds = (10.0,)
        counts = (0, 5)
        assert histogram_quantile(bounds, counts, 0.99) == 10.0

    def test_empty_histogram_is_zero(self):
        assert histogram_quantile((1.0,), (0, 0), 0.5) == 0.0

    def test_rejects_out_of_range_q(self):
        with pytest.raises(ValueError):
            histogram_quantile((1.0,), (1, 0), 1.5)


# -- exposition ------------------------------------------------------------------


def _sample_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("service.requests.ok").inc(7)
    registry.gauge("service.cluster.shards").set(2)
    histogram = registry.histogram("service.latency_ms", (1.0, 10.0))
    histogram.observe(0.5, exemplar="rid=3", at_ms=100.0)
    histogram.observe(5.0)
    histogram.observe(50.0)
    return registry


class TestExport:
    def test_prometheus_text_shape(self):
        text = prometheus_text(_sample_registry())
        assert "# TYPE service_requests_ok_total counter" in text
        assert "service_requests_ok_total 7" in text
        assert "service_cluster_shards 2" in text
        # Cumulative buckets with the +Inf terminator.
        assert 'service_latency_ms_bucket{le="1"} 1' in text
        assert 'service_latency_ms_bucket{le="10"} 2' in text
        assert 'service_latency_ms_bucket{le="+Inf"} 3' in text
        assert "service_latency_ms_count 3" in text
        # The exemplar annotation ties the bucket to the request.
        assert '# {key="rid=3",at_ms="100"} 0.5' in text
        assert text.endswith("# EOF\n")

    def test_prometheus_text_is_byte_stable(self):
        assert prometheus_text(_sample_registry()) == prometheus_text(
            _sample_registry()
        )
        assert render_json(_sample_registry()) == render_json(
            _sample_registry()
        )

    def test_exemplars_can_be_suppressed(self):
        text = prometheus_text(_sample_registry(), exemplars=False)
        assert "rid=3" not in text

    def test_diff_reports_only_what_moved(self):
        before = _sample_registry().snapshot()
        after_registry = _sample_registry()
        after_registry.counter("service.requests.ok").inc(3)
        after_registry.gauge("service.cluster.shards").set(4)
        after_registry.histogram("service.latency_ms", (1.0, 10.0)).observe(
            2.0
        )
        diff = diff_snapshots(before, after_registry.snapshot())
        assert diff["counters"] == {"service.requests.ok": 3}
        assert diff["gauges"] == {"service.cluster.shards": [2, 4]}
        assert diff["histograms"]["service.latency_ms"]["count"] == 1
        assert diff["histograms"]["service.latency_ms"]["counts"] == [0, 1, 0]

    def test_diff_of_equal_snapshots_is_empty(self):
        diff = diff_snapshots(
            _sample_registry().snapshot(), _sample_registry().snapshot()
        )
        assert diff == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_diff_flags_changed_bounds(self):
        a = MetricsRegistry()
        a.histogram("h", (1.0,)).observe(0.5)
        b = MetricsRegistry()
        b.histogram("h", (2.0,)).observe(0.5)
        diff = diff_snapshots(a.snapshot(), b.snapshot())
        assert "bounds_changed" in diff["histograms"]["h"]


# -- the serving integration -----------------------------------------------------


class TestWireSurfacePinned:
    """Observability off = byte-identical to the pre-PR tree."""

    def test_single_node(self, service_index, workload):
        result = LinkStatusService(service_index, ServerConfig()).serve(
            workload
        )
        assert wire_sha(result.responses) == PINNED_WIRE_SHA

    def test_cluster(self, service_index, workload):
        result = ClusterService(
            service_index,
            ServerConfig(),
            ClusterConfig(n_shards=2, replicas_per_shard=2),
        ).serve(workload)
        assert wire_sha(result.responses) == PINNED_WIRE_SHA

    def test_cluster_under_chaos(self, service_index, workload):
        result = ClusterService(
            service_index,
            ServerConfig(),
            ClusterConfig(n_shards=2, replicas_per_shard=2),
            faults=ServiceFaultPlan.crashes(**CRASH_PLAN),
        ).serve(workload)
        assert wire_sha(result.responses) == PINNED_WIRE_SHA

    def test_full_observability_moves_no_wire_byte(
        self, service_index, workload
    ):
        result = ClusterService(
            service_index,
            ServerConfig(),
            ClusterConfig(n_shards=2, replicas_per_shard=2),
            faults=ServiceFaultPlan.crashes(**CRASH_PLAN),
            tracer=Tracer(),
            audit=AuditLog(),
        ).serve(workload)
        assert wire_sha(result.responses) == PINNED_WIRE_SHA


class TestAuditLog:
    @staticmethod
    def chaos_run(service_index, workload):
        audit = AuditLog()
        service = ClusterService(
            service_index,
            ServerConfig(),
            ClusterConfig(n_shards=2, replicas_per_shard=2),
            faults=ServiceFaultPlan.crashes(**CRASH_PLAN),
            audit=audit,
        )
        result = service.serve(workload)
        return result, audit

    def test_audit_jsonl_is_byte_deterministic(
        self, service_index, workload
    ):
        _, first = self.chaos_run(service_index, workload)
        _, second = self.chaos_run(service_index, workload)
        assert first.lines() == second.lines()
        assert len(first) == len(workload)

    def test_audit_covers_every_request_exactly_once(
        self, service_index, workload
    ):
        result, audit = self.chaos_run(service_index, workload)
        assert sorted(r.request_id for r in audit.records) == sorted(
            r.request_id for r in result.responses
        )
        by_id = {r.request_id: r for r in audit.records}
        for response in result.responses:
            record = by_id[response.request_id]
            assert record.status == response.status
            assert record.completion_ms == response.completion_ms

    def test_shed_reasons_and_roles(self, service_index, workload):
        _, audit = self.chaos_run(service_index, workload)
        outcomes = {r.outcome for r in audit.records}
        assert "shed" in outcomes and "ok" in outcomes
        for record in audit.records:
            if record.status == 429:
                assert record.reason == "admission"
                assert record.coalesce == "" and record.replica == ""
            elif record.status == 503:
                assert record.reason == "unavailable"
            else:
                assert record.reason == ""
                assert record.coalesce in ("carrier", "hit", "rider")
                assert record.replica and record.shard
                assert record.attempts >= 1

    def test_blame_trail_round_trips_through_jsonl(
        self, service_index, workload, tmp_path
    ):
        _, audit = self.chaos_run(service_index, workload)
        blamed = [r for r in audit.records if r.redispatches]
        assert blamed, "crash plan induced no re-dispatches"
        path = tmp_path / "audit.jsonl"
        assert audit.write_jsonl(path) == len(audit)
        records = read_audit_jsonl(path)
        assert len(records) == len(audit)
        loaded = {r["rid"]: r for r in records}
        for record in blamed:
            assert loaded[record.request_id]["redispatches"] == list(
                record.redispatches
            )

    def test_single_node_audit_is_deterministic(
        self, service_index, workload
    ):
        def run():
            audit = AuditLog()
            LinkStatusService(
                service_index, ServerConfig(), audit=audit
            ).serve(workload)
            return audit.lines()

        first, second = run(), run()
        assert first == second
        assert len(first) == len(workload)


class TestChaosAttribution:
    """The acceptance contract: an induced crash is attributed to the
    crashed replica and the ``crash`` fault channel."""

    @pytest.fixture(scope="class")
    def graded(self, service_index, workload):
        audit = AuditLog()
        tracer = Tracer()
        service = ClusterService(
            service_index,
            ServerConfig(),
            ClusterConfig(n_shards=2, replicas_per_shard=2),
            faults=ServiceFaultPlan.crashes(**CRASH_PLAN),
            audit=audit,
            tracer=tracer,
        )
        result = service.serve(workload)
        records = [json.loads(line) for line in audit.lines()]
        # A latency bar tight enough that crash-delayed requests are
        # bad SLI events (the crash windows add ~100-200 virtual ms).
        specs = (
            SloSpec(name="availability", kind="availability", objective=0.999),
            SloSpec(
                name="latency-p99", kind="latency", objective=0.99,
                threshold_ms=150.0,
            ),
            SloSpec(name="shed-rate", kind="shed_rate", objective=0.95),
        )
        return result, audit, tracer, records, specs

    def test_crash_is_charged_to_the_crashed_replicas(self, graded):
        result, _, _, records, specs = graded
        table = burn_attribution(records, specs)
        crashed = {
            event.replica_id
            for event in result.fault_events
            if event.kind == "crash"
        }
        assert crashed == {"s0r0", "s0r1"}
        charged = {
            replica for (replica, channel) in table if channel == "crash"
        }
        assert charged == crashed
        # The crash rows carry real traffic and real burned budget.
        for replica in crashed:
            row = table[(replica, "crash")]
            assert row["requests"] > 0
            assert row["latency-p99_bad"] > 0
        # No healthy-shard replica is ever blamed for a fault.
        assert not any(
            replica.startswith("s1") and channel == "crash"
            for (replica, channel) in table
        )

    def test_verdict_and_rendering(self, graded):
        _, _, _, records, specs = graded
        report = evaluate(events_from_audit(records), specs)
        assert not report.met
        assert report.outcome("latency-p99").verdict == "violated"
        text = render_attribution(burn_attribution(records, specs), specs)
        assert "crash" in text and "s0r0" in text and "s0r1" in text

    def test_evaluation_is_deterministic(self, graded):
        _, _, _, records, specs = graded
        first = evaluate(events_from_audit(records), specs).to_dict()
        second = evaluate(events_from_audit(records), specs).to_dict()
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )

    def test_events_from_audit_match_events_from_responses(self, graded):
        result, _, _, records, _ = graded
        assert events_from_audit(records) == events_from_responses(
            result.responses
        )

    def test_slo_report_script_attributes_the_crash(
        self, graded, artifact_dir, capsys
    ):
        result, audit, tracer, _, _ = graded
        audit_path = artifact_dir / "slo-audit.jsonl"
        trace_path = artifact_dir / "slo-trace.jsonl"
        metrics_path = artifact_dir / "slo-metrics.json"
        json_path = artifact_dir / "slo-report.json"
        audit.write_jsonl(audit_path)
        tracer.write_jsonl(trace_path)
        metrics_path.write_text(
            render_json(result.metrics), encoding="utf-8"
        )
        code = slo_report.main(
            [
                str(audit_path),
                "--trace", str(trace_path),
                "--metrics", str(metrics_path),
                "--latency-threshold-ms", "150",
                "--json", str(json_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 1  # the tight latency SLO is violated
        assert "SLO verdicts:" in out
        assert "violated" in out
        # The burn table and the trace join both name the crash.
        assert "s0r0" in out and "crash" in out
        # Per-replica quantiles came from the prefixed families.
        assert "per-replica latency quantiles" in out
        payload = json.loads(json_path.read_text())
        assert payload["met"] is False
        assert any(
            row["channel"] == "crash" for row in payload["attribution"]
        )

    def test_prometheus_exposition_of_the_fleet_registry(self, graded):
        result, _, _, _, _ = graded
        text = prometheus_text(result.metrics)
        # Per-replica prefixed families render as their own sanitized
        # metric names next to the fleet rollup.
        assert "# TYPE service_latency_ms histogram" in text
        assert "service_replica_s0r0_service_latency_ms_bucket" in text
        # Exemplars link buckets back to request/replica identities.
        assert "rid=" in text and "replica=" in text
        assert prometheus_text(result.metrics) == text  # byte-stable
