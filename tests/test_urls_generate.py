"""Tests for repro.urls.generate."""

from repro.rng import Stream
from repro.urls.editdist import edit_distance
from repro.urls.generate import UrlFactory
from repro.urls.parse import parse_url
from repro.urls.psl import registrable_domain


def factory(seed: int = 1) -> UrlFactory:
    return UrlFactory(Stream(seed))


class TestHostnames:
    def test_hostnames_unique_per_registered_domain(self):
        f = factory()
        hosts = [f.hostname() for _ in range(300)]
        domains = [registrable_domain(h) for h in hosts]
        assert len(set(domains)) == len(domains)

    def test_hostnames_parse(self):
        f = factory(2)
        for _ in range(50):
            host = f.hostname()
            assert parse_url(f"http://{host}/").host_lower == host.lower()

    def test_sibling_hostname_differs(self):
        f = factory(3)
        host = f.hostname()
        sibling = f.sibling_hostname(host)
        assert sibling != host
        assert registrable_domain(sibling) == registrable_domain(host)


class TestPaths:
    def test_directory_slash_terminated(self):
        f = factory(4)
        for _ in range(30):
            d = f.directory()
            assert d.startswith("/") and d.endswith("/")

    def test_leaf_styles(self):
        f = factory(5)
        numeric = f.leaf(style="numeric")
        assert numeric.endswith(".htm")
        assert numeric[:-4].isdigit()
        asp = f.leaf(style="asp")
        assert "." in asp

    def test_query_string_param_count(self):
        f = factory(6)
        qs = f.query_string(params=4)
        assert qs.count("=") == 4
        assert qs.count("&") == 3


class TestTypos:
    def test_typo_is_distance_one(self):
        f = factory(7)
        url = parse_url("http://www.example.com/news/2011/story.html")
        for _ in range(50):
            mangled = f.typo(url)
            assert edit_distance(str(url), str(mangled)) == 1

    def test_typo_keeps_hostname(self):
        f = factory(8)
        url = parse_url("http://www.example.com/news/story.html?id=5")
        for _ in range(30):
            assert f.typo(url).hostname == url.hostname

    def test_typo_parses(self):
        f = factory(9)
        url = parse_url("http://www.example.com/a/b.html")
        for _ in range(30):
            parse_url(str(f.typo(url)))  # must not raise


class TestRandomLeafProbe:
    def test_probe_in_same_directory(self):
        f = factory(10)
        url = parse_url("http://e.com/a/b/story.html")
        probe = f.random_leaf_probe(url)
        assert probe.directory == url.directory
        assert len(probe.leaf) == 25

    def test_probe_replaces_query_too(self):
        f = factory(11)
        url = parse_url("http://e.com/a/view.asp?id=7&x=2")
        probe = f.random_leaf_probe(url)
        assert probe.query == ""
        assert probe.path.startswith("/a/")
