"""Differential tests for the columnar analysis kernels.

The contract of :mod:`repro.analysis.columnar` is *value identity*:
every batch kernel, on either numeric backend, must equal the
per-record reference implementation in :mod:`repro.textsim.shingles` /
:mod:`repro.reporting.cdf` exactly — not approximately. These tests
pin that with hypothesis-driven comparisons on both backends inside
one process (via ``force_backend``), capped by a byte-compare of the
whole golden study report rendered under each backend.
"""

from __future__ import annotations

import importlib.util
import math
from bisect import bisect_right

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import columnar
from repro.reporting.cdf import Ecdf, ecdf
from repro.textsim.shingles import (
    minhash_sketch,
    shingle_set,
    shingle_similarity,
    sketch_similarity,
)

NUMPY_AVAILABLE = importlib.util.find_spec("numpy") is not None

BACKENDS = ["stdlib"] + (["numpy"] if NUMPY_AVAILABLE else [])


def each_backend(check) -> None:
    """Run ``check(backend_name)`` under every installed backend.

    A loop rather than a fixture so hypothesis examples exercise both
    backends without tripping the function-scoped-fixture health
    check; the prior backend is always restored.
    """
    for name in BACKENDS:
        prior = columnar.force_backend(name)
        try:
            check(name)
        finally:
            columnar.force_backend(prior)


# A small shared vocabulary (so shingle sets actually collide) plus
# tokens that exercise tokenize(): case folding, punctuation
# stripping, digits.
_WORDS = (
    "alpha beta gamma delta epsilon zeta eta theta iota kappa "
    "Error, 404 NOT-FOUND page#42"
).split()

texts = st.lists(
    st.sampled_from(_WORDS), min_size=0, max_size=24
).map(" ".join)

shingle_widths = st.integers(min_value=1, max_value=6)

finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e9, max_value=1e9
)

# Sample values drawn from a tiny grid so ties are the norm, mixed
# with arbitrary finite floats.
tie_prone_floats = st.one_of(
    st.integers(min_value=0, max_value=5).map(float), finite_floats
)


# -- shingle / MinHash kernels ----------------------------------------------------


class TestShingleKernels:
    @given(st.lists(st.tuples(texts, texts), max_size=8), shingle_widths)
    @settings(max_examples=120, deadline=None)
    def test_shingle_similarity_batch_matches_reference(self, pairs, k):
        expected = [shingle_similarity(a, b, k) for a, b in pairs]

        def check(name):
            assert columnar.shingle_similarity_batch(pairs, k) == expected

        each_backend(check)

    @given(st.lists(texts, max_size=8), shingle_widths)
    @settings(max_examples=100, deadline=None)
    def test_minhash_batch_matches_scalar_on_both_backends(self, docs, k):
        results = {}

        def check(name):
            scalar = [minhash_sketch(t, k) for t in docs]
            batch = columnar.minhash_sketch_batch(docs, k)
            assert batch == scalar
            results[name] = batch

        each_backend(check)
        # Bit-identical *across* backends, not just batch-vs-scalar
        # within one: an archive built without numpy matches one
        # built with it.
        assert len(set(map(tuple, results.values()))) == 1

    @given(st.lists(texts, min_size=2, max_size=6))
    @settings(max_examples=80, deadline=None)
    def test_sketch_similarity_batch_matches_scalar(self, docs):
        sketches = [minhash_sketch(t) for t in docs]
        pairs = [
            (a, b) for a in sketches for b in sketches
        ]
        expected = [sketch_similarity(a, b) for a, b in pairs]

        def check(name):
            assert columnar.sketch_similarity_batch(pairs) == expected

        each_backend(check)

    def test_shingle_similarity_batch_rejects_bad_k(self):
        def check(name):
            with pytest.raises(ValueError):
                columnar.shingle_similarity_batch([("a b", "a b")], 0)

        each_backend(check)

    def test_sketch_similarity_batch_rejects_ragged_pairs(self):
        good = minhash_sketch("alpha beta gamma delta epsilon")

        def check(name):
            with pytest.raises(ValueError):
                columnar.sketch_similarity_batch([(good, good[:-1])])
            with pytest.raises(ValueError):
                columnar.sketch_similarity_batch([((), ())])

        each_backend(check)

    def test_wide_shingles_overflow_uint64_packing_exactly(self):
        """k wide enough that (vocab+1)**k > 2**64 stays exact.

        The numpy packing cannot be injective in uint64 here, so the
        implementation must take its arbitrary-precision fallback
        rather than return an approximate Jaccard.
        """
        a = " ".join(_WORDS[i % 10] for i in range(60))
        b = " ".join(_WORDS[(i + 3) % 10] for i in range(55))
        for k in (40, 64, 65):
            expected = [
                shingle_similarity(a, b, k),
                shingle_similarity(a, a, k),
                shingle_similarity("", b, k),
            ]
            pairs = [(a, b), (a, a), ("", b)]

            def check(name):
                assert columnar.shingle_similarity_batch(pairs, k) == expected

            each_backend(check)

    @given(st.text(max_size=200))
    @settings(max_examples=200, deadline=None)
    def test_tokenize_fast_path_matches_regex_contract(self, text):
        """ASCII translate+split tokenization equals the regex scan.

        The regex defines the contract (maximal ``[a-z0-9]+`` runs of
        the lowercased text); the ASCII fast lane must never deviate,
        on ASCII or otherwise.
        """
        from repro.textsim.shingles import _TOKEN_RE, tokenize

        assert tokenize(text) == _TOKEN_RE.findall(text.lower())

    @given(texts, texts, shingle_widths)
    @settings(max_examples=60, deadline=None)
    def test_shingle_set_is_the_ground_truth(self, a, b, k):
        """The reference itself ties back to explicit set algebra."""
        set_a, set_b = shingle_set(a, k), shingle_set(b, k)
        if not set_a and not set_b:
            expected = 1.0
        else:
            expected = len(set_a & set_b) / len(set_a | set_b)
        assert shingle_similarity(a, b, k) == expected


# -- bucket counts ----------------------------------------------------------------


_LABELS = ["ok", "dead", "redirect", "timeout", "dns"]


class TestBucketCounts:
    @given(
        st.lists(st.sampled_from(_LABELS), max_size=40),
        st.permutations(_LABELS).map(lambda p: p[:3]),
    )
    @settings(max_examples=100, deadline=None)
    def test_matches_loop_reference(self, labels, order):
        reference: dict[str, int] = {key: 0 for key in order}
        for label in labels:
            reference[label] = reference.get(label, 0) + 1

        def check(name):
            result = columnar.bucket_counts(labels, order)
            assert result == reference
            # dict equality ignores ordering; the Figure 4 contract
            # does not — ordered keys first, extras in first-seen
            # order.
            assert list(result) == list(reference)

        each_backend(check)

    def test_accepts_any_iterable(self):
        def check(name):
            result = columnar.bucket_counts(
                (label for label in ["b", "a", "b"]), order=("a",)
            )
            assert result == {"a": 1, "b": 2}
            assert list(result) == ["a", "b"]

        each_backend(check)


# -- float kernels: sorted_floats / ks_distance -----------------------------------


def _legacy_ks(a_values, b_values) -> float:
    """The pre-columnar per-grid-point KS formulation."""
    grid = sorted(set(a_values) | set(b_values))
    return max(
        abs(
            bisect_right(a_values, x) / len(a_values)
            - bisect_right(b_values, x) / len(b_values)
        )
        for x in grid
    )


class TestFloatKernels:
    @given(st.lists(tie_prone_floats, max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_sorted_floats_matches_sorted(self, sample):
        expected = tuple(sorted(float(v) for v in sample))

        def check(name):
            assert columnar.sorted_floats(sample) == expected

        each_backend(check)

    @given(
        st.lists(tie_prone_floats, min_size=1, max_size=30),
        st.lists(tie_prone_floats, min_size=1, max_size=30),
    )
    @settings(max_examples=100, deadline=None)
    def test_ks_distance_matches_legacy_bisect_form(self, a, b):
        a_sorted = tuple(sorted(float(v) for v in a))
        b_sorted = tuple(sorted(float(v) for v in b))
        expected = _legacy_ks(a_sorted, b_sorted)

        def check(name):
            assert columnar.ks_distance(a_sorted, b_sorted) == expected

        each_backend(check)

    def test_ecdf_ks_empty_conventions(self):
        def check(name):
            assert ecdf([]).ks_distance(ecdf([])) == 0.0
            assert ecdf([]).ks_distance(ecdf([1.0])) == 1.0
            assert ecdf([1.0]).ks_distance(ecdf([])) == 1.0
            assert ecdf([1.0, 2.0]).ks_distance(ecdf([1.0, 2.0])) == 0.0

        each_backend(check)


# -- Ecdf properties --------------------------------------------------------------


class TestEcdfProperties:
    @given(
        st.lists(tie_prone_floats, min_size=1, max_size=40),
        st.one_of(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            # Exact lattice points k/n — the boundary cases where a
            # naive ceil() formulation goes one index wrong.
            st.tuples(
                st.integers(min_value=0, max_value=20),
                st.integers(min_value=1, max_value=20),
            ).map(lambda t: min(t[0] / t[1], 1.0)),
        ),
    )
    @settings(max_examples=150, deadline=None)
    def test_quantile_is_smallest_value_reaching_q(self, sample, q):
        def check(name):
            curve = ecdf(sample)
            oracle = next(v for v in curve.values if curve.at(v) >= q)
            assert curve.quantile(q) == oracle

        each_backend(check)

    def test_quantile_rejects_bad_input(self):
        curve = ecdf([1.0, 2.0])
        with pytest.raises(ValueError):
            curve.quantile(1.5)
        with pytest.raises(ValueError):
            ecdf([]).quantile(0.5)

    @given(st.lists(tie_prone_floats, min_size=1, max_size=60))
    @settings(max_examples=100, deadline=None)
    def test_series_dedupes_ties_and_closes_at_one(self, sample):
        def check(name):
            curve = ecdf(sample)
            pairs = curve.series(points=10)
            xs = [x for x, _ in pairs]
            fs = [f for _, f in pairs]
            # Strictly increasing x (tied sample values collapse to
            # one point), consistent F, and the curve closes at
            # (max, 1.0).
            assert xs == sorted(set(xs))
            assert fs == [curve.at(x) for x in xs]
            assert pairs[-1] == (curve.values[-1], 1.0)

        each_backend(check)

    @given(st.lists(tie_prone_floats, max_size=40))
    @settings(max_examples=80, deadline=None)
    def test_ecdf_construction_identical_across_backends(self, sample):
        built = {}

        def check(name):
            built[name] = ecdf(sample).values

        each_backend(check)
        assert len(set(built.values())) == 1

    def test_ecdf_rejects_unsorted_values(self):
        def check(name):
            with pytest.raises(ValueError):
                Ecdf(values=(2.0, 1.0))

        each_backend(check)


# -- the capstone: whole-report byte identity -------------------------------------


@pytest.mark.skipif(not NUMPY_AVAILABLE, reason="needs both backends")
def test_golden_report_bytes_identical_across_backends():
    """The full golden study renders byte-identically per backend.

    This is the end-to-end form of the kernel-level differential
    tests above: world generation, every analysis phase, ECDF and
    figure rendering — one run forced onto each backend, compared as
    raw text. (The committed snapshot comparison lives in
    ``tests/test_golden_report.py``; this test pins backend
    independence even when the snapshot itself is regenerated.)
    """
    from repro.reporting.golden import render_golden_report

    rendered = {}
    for name in BACKENDS:
        prior = columnar.force_backend(name)
        try:
            rendered[name] = render_golden_report()
        finally:
            columnar.force_backend(prior)
    assert rendered["stdlib"] == rendered["numpy"]
