"""Tests for repro.iabot — checker, archive client, bot, medic.

These use a hand-built mini-world so every policy can be exercised
against known lifecycles.
"""

import pytest

from repro.archive.availability import AvailabilityApi, AvailabilityPolicy
from repro.archive.crawler import ArchiveCrawler
from repro.archive.store import SnapshotStore
from repro.clock import SimTime
from repro.iabot.archive_client import IABotArchiveClient
from repro.iabot.bot import InternetArchiveBot, _splice
from repro.iabot.checker import LinkChecker
from repro.iabot.config import IABotConfig
from repro.iabot.medic import WaybackMedic
from repro.wiki.encyclopedia import Encyclopedia, PERMADEAD_CATEGORY
from repro.wiki.templates import IABOT_USERNAME, cite_web
from repro.web.behaviors import MissingPagePolicy
from repro.web.page import Page, PageFate
from repro.web.site import Site
from repro.web.world import LiveWeb

T2005 = SimTime.from_ymd(2005, 1, 1)
T2008 = SimTime.from_ymd(2008, 1, 1)
T2010 = SimTime.from_ymd(2010, 1, 1)
T2012 = SimTime.from_ymd(2012, 1, 1)
T2014 = SimTime.from_ymd(2014, 1, 1)
T2017 = SimTime.from_ymd(2017, 1, 1)
T2021 = SimTime.from_ymd(2021, 6, 1)

ALIVE = "http://w.example.com/alive.html"
DEAD = "http://w.example.com/dead.html"
DEAD_UNARCHIVED = "http://w.example.com/dead-unarchived.html"


@pytest.fixture
def mini():
    """(web, store, enc) with one site, three links, a seeded archive."""
    web = LiveWeb()
    site = Site(
        hostname="w.example.com",
        seed="mini",
        created_at=T2005,
        missing_policy=MissingPagePolicy.HARD_404,
    )
    site.add_page(Page(path_query="/alive.html", created_at=T2008))
    site.add_page(
        Page(
            path_query="/dead.html",
            created_at=T2008,
            fate=PageFate.DELETED,
            died_at=T2012,
        )
    )
    site.add_page(
        Page(
            path_query="/dead-unarchived.html",
            created_at=T2008,
            fate=PageFate.DELETED,
            died_at=T2012,
        )
    )
    web.add_site(site)

    store = SnapshotStore()
    crawler = ArchiveCrawler(web.fetcher(), store)
    crawler.capture(DEAD, T2010)   # a usable initial-200 copy
    crawler.capture(DEAD, T2014)   # a 404 copy after death

    enc = Encyclopedia()
    enc.create_article(
        "Test Article",
        T2010,
        "Human",
        "== Refs ==\n* " + cite_web(ALIVE, "a").render()
        + "\n* " + cite_web(DEAD, "b").render()
        + "\n* " + cite_web(DEAD_UNARCHIVED, "c").render() + "\n",
    )
    return web, store, enc


def make_bot(web, store, enc, timeout_ms=None, recheck=False):
    api = AvailabilityApi(store, AvailabilityPolicy(seed="bot-test"))
    return InternetArchiveBot(
        enc,
        LinkChecker(web.fetcher()),
        IABotArchiveClient(api, timeout_ms=timeout_ms),
        IABotConfig(availability_timeout_ms=timeout_ms, recheck_marked_links=recheck),
    )


class TestLinkChecker:
    def test_alive(self, mini):
        web, _, _ = mini
        verdict = LinkChecker(web.fetcher()).check(ALIVE, T2017)
        assert not verdict.dead

    def test_dead(self, mini):
        web, _, _ = mini
        verdict = LinkChecker(web.fetcher()).check(DEAD, T2017)
        assert verdict.dead
        assert verdict.last_result.final_status == 404

    def test_single_check_by_default(self, mini):
        web, _, _ = mini
        checker = LinkChecker(web.fetcher())
        checker.check(DEAD, T2017)
        assert checker.checks_performed == 1

    def test_multiple_checks_configurable(self, mini):
        web, _, _ = mini
        checker = LinkChecker(web.fetcher(), checks_before_dead=3)
        verdict = checker.check(DEAD, T2017)
        assert verdict.dead
        assert len(verdict.attempts) == 3

    def test_alive_short_circuits(self, mini):
        web, _, _ = mini
        checker = LinkChecker(web.fetcher(), checks_before_dead=3)
        verdict = checker.check(ALIVE, T2017)
        assert len(verdict.attempts) == 1

    def test_validation(self, mini):
        web, _, _ = mini
        with pytest.raises(ValueError):
            LinkChecker(web.fetcher(), checks_before_dead=0)


class TestArchiveClient:
    def test_finds_initial_200_copy(self, mini):
        _, store, _ = mini
        api = AvailabilityApi(store, AvailabilityPolicy(seed="c"))
        client = IABotArchiveClient(api, timeout_ms=None)
        copy = client.find_copy(DEAD, posted_at=T2010)
        assert copy is not None
        assert copy.initial_status == 200

    def test_no_copy_for_unarchived(self, mini):
        _, store, _ = mini
        api = AvailabilityApi(store, AvailabilityPolicy(seed="c"))
        client = IABotArchiveClient(api, timeout_ms=None)
        assert client.find_copy(DEAD_UNARCHIVED, posted_at=T2010) is None

    def test_timeout_reads_as_no_copy(self, mini):
        _, store, _ = mini
        api = AvailabilityApi(
            store, AvailabilityPolicy(base_ms=100.0, seed="c")
        )
        client = IABotArchiveClient(api, timeout_ms=0.5)
        assert client.find_copy(DEAD, posted_at=T2010) is None
        assert client.timeouts == 1


class TestBot:
    def test_patches_dead_link_with_copy(self, mini):
        web, store, enc = mini
        bot = make_bot(web, store, enc)
        stats = bot.run_sweep(T2017)
        assert stats.patched == 1
        assert stats.marked_permadead == 1  # the unarchived one
        assert stats.links_alive == 1
        refs = {r.url: r for r in enc.article("Test Article").link_refs()}
        assert refs[DEAD].archive_url is not None
        assert refs[DEAD_UNARCHIVED].is_permanently_dead
        assert not refs[ALIVE].is_marked_dead

    def test_edit_authored_by_iabot(self, mini):
        web, store, enc = mini
        make_bot(web, store, enc).run_sweep(T2017)
        assert enc.article("Test Article").latest.user == IABOT_USERNAME

    def test_category_filed(self, mini):
        web, store, enc = mini
        make_bot(web, store, enc).run_sweep(T2017)
        assert enc.articles_in_category(PERMADEAD_CATEGORY) == ("Test Article",)

    def test_marked_links_skipped_on_next_sweep(self, mini):
        web, store, enc = mini
        bot = make_bot(web, store, enc)
        bot.run_sweep(T2017)
        second = bot.run_sweep(T2017.plus_days(200))
        assert second.skipped_marked == 1
        assert second.skipped_patched == 1
        assert second.marked_permadead == 0

    def test_recheck_mode_unmarks_revived_link(self):
        web = LiveWeb()
        site = Site(hostname="r.example.com", seed="r", created_at=T2005)
        site.add_page(
            Page(
                path_query="/page.html",
                created_at=T2008,
                fate=PageFate.DELETED,
                died_at=T2012,
                revived_at=SimTime.from_ymd(2019, 1, 1),
            )
        )
        web.add_site(site)
        enc = Encyclopedia()
        url = "http://r.example.com/page.html"
        enc.create_article(
            "Revived", T2010, "H", "* " + cite_web(url, "x").render()
        )
        store = SnapshotStore()
        bot = make_bot(web, store, enc, recheck=True)
        bot.run_sweep(T2017)  # marks it
        assert enc.articles_in_category(PERMADEAD_CATEGORY) == ("Revived",)
        stats = bot.run_sweep(T2021)  # finds it working again
        assert stats.unmarked_revived == 1
        assert enc.articles_in_category(PERMADEAD_CATEGORY) == ()

    def test_no_recheck_by_default_even_if_revived(self):
        web = LiveWeb()
        site = Site(hostname="r.example.com", seed="r", created_at=T2005)
        site.add_page(
            Page(
                path_query="/page.html",
                created_at=T2008,
                fate=PageFate.DELETED,
                died_at=T2012,
                revived_at=SimTime.from_ymd(2019, 1, 1),
            )
        )
        web.add_site(site)
        enc = Encyclopedia()
        url = "http://r.example.com/page.html"
        enc.create_article("Revived", T2010, "H", "* " + cite_web(url, "x").render())
        bot = make_bot(web, SnapshotStore(), enc)
        bot.run_sweep(T2017)
        bot.run_sweep(T2021)
        assert enc.articles_in_category(PERMADEAD_CATEGORY) == ("Revived",)

    def test_bare_link_patched_with_webarchive(self, mini):
        web, store, enc = mini
        enc.create_article(
            "Bare", T2010, "H", f"see [{DEAD} caption] here"
        )
        make_bot(web, store, enc).run_sweep(T2017)
        (ref,) = enc.article("Bare").link_refs()
        assert ref.archive_url is not None
        assert ref.title == "caption"

    def test_snapshot_closest_to_posting_chosen(self, mini):
        web, store, enc = mini
        # DEAD has copies at 2010 (200) and 2014 (404); posted 2010 →
        # the 200 from 2010 must be chosen, and the patch must carry
        # its timestamp.
        make_bot(web, store, enc).run_sweep(T2017)
        refs = {r.url: r for r in enc.article("Test Article").link_refs()}
        assert "/2010" in refs[DEAD].archive_url.replace("20100101000000", "/2010")


class TestSplice:
    def test_multiple_replacements(self):
        text = "aa XX bb YY cc"
        out = _splice(text, [((3, 5), "11"), ((9, 11), "2222")])
        assert out == "aa 11 bb 2222 cc"

    def test_overlap_rejected(self):
        with pytest.raises(ValueError):
            _splice("abcdef", [((0, 3), "x"), ((2, 4), "y")])


class TestWaybackMedic:
    def test_patient_lookup_rescues_timeout_victims(self, mini):
        web, store, enc = mini
        # A bot with an absurdly tight timeout marks everything dead...
        bot = make_bot(web, store, enc, timeout_ms=0.0001)
        bot.run_sweep(T2017)
        refs = {r.url: r for r in enc.article("Test Article").link_refs()}
        assert refs[DEAD].is_permanently_dead
        # ...and the medic rescues the one with a real copy.
        api = AvailabilityApi(store, AvailabilityPolicy(seed="medic"))
        medic = WaybackMedic(enc, api)
        report = medic.run(T2021)
        assert report.patched_with_200_copy == 1
        assert report.still_permadead == 1
        refs = {r.url: r for r in enc.article("Test Article").link_refs()}
        assert refs[DEAD].archive_url is not None
        assert refs[DEAD_UNARCHIVED].is_permanently_dead

    def test_redirect_finder_hook(self, mini):
        web, store, enc = mini
        bot = make_bot(web, store, enc, timeout_ms=0.0001)
        bot.run_sweep(T2017)
        from repro.archive.snapshot import Snapshot

        fake_copy = Snapshot(
            url=DEAD_UNARCHIVED,
            captured_at=T2010,
            initial_status=301,
            redirect_location="http://w.example.com/alive.html",
            final_status=200,
            final_url="http://w.example.com/alive.html",
        )

        api = AvailabilityApi(store, AvailabilityPolicy(seed="medic2"))
        medic = WaybackMedic(
            enc, api, redirect_finder=lambda url, marked: (
                fake_copy if url == DEAD_UNARCHIVED else None
            )
        )
        report = medic.run(T2021)
        assert report.patched_with_validated_redirect == 1
        assert report.still_permadead == 0
