"""Per-link forensics: everything the paper's methodology can tell you
about one URL.

For a handful of links sampled from a generated world's permanently
dead population, this walks the full diagnostic battery:

- live-web probe with redirect chain (Figure 4 classification);
- soft-404 screening via the random-sibling probe (§3);
- archived-copy census split at the marking date (§4.1);
- redirect validation of any 3xx copies (§4.2);
- first-capture timing relative to the posting date (§5.1);
- coverage context and typo suggestion if never archived (§5.2).

Run:  python examples/link_forensics.py [n_links] [how_many]
"""

import sys

from repro.analysis.copies import census_link
from repro.analysis.redirects import RedirectValidator
from repro.analysis.soft404 import Soft404Detector
from repro.analysis.spatial import spatial_analysis
from repro.analysis.typos import find_typos
from repro.dataset.collector import Collector
from repro.dataset.sampler import sample_iabot_marked
from repro.dataset.worldgen import WorldConfig, generate_world
from repro.rng import RngRegistry


def investigate(world, record, detector, validator) -> None:
    print("=" * 72)
    print(f"URL:     {record.url}")
    print(
        f"posted:  {record.posted_at.isoformat()}   "
        f"marked dead: {record.marked_at.isoformat()} by {record.marked_by}"
    )

    result = world.fetch(record.url, world.study_time)
    print(f"today:   {result.describe()}")
    if result.final_status == 200:
        verdict = detector.check(record.url, world.study_time)
        status = "genuinely functional" if verdict.genuinely_alive else "BROKEN"
        print(f"         soft-404 screen: {status} ({verdict.reason})")

    census = census_link(record, world.cdx)
    print(
        f"archive: {len(census.pre_marking)} copies before marking, "
        f"{len(census.post_marking)} after"
    )
    for snapshot in census.pre_marking[:4]:
        print(f"         {snapshot.describe()}")
        if snapshot.initial_redirected:
            verdict = validator.validate(snapshot)
            judged = "VALID" if verdict.valid else "erroneous"
            print(f"           redirect judged {judged}: {verdict.reason}")
    if census.first_snapshot is not None:
        gap = census.first_snapshot.captured_at.days - record.posted_at.days
        if gap >= 0:
            print(f"timing:  first capture {gap:.0f} days after posting")
        else:
            print(f"timing:  first capture {-gap:.0f} days BEFORE posting")
    else:
        spatial = spatial_analysis([record], world.cdx).records[0]
        print(
            "timing:  never archived; "
            f"{spatial.directory_neighbors} archived URLs in its directory, "
            f"{spatial.hostname_neighbors} on its host"
        )
        typo = find_typos([record], world.cdx)
        if typo.findings:
            print(f"typo?    likely — did the editor mean:")
            print(f"         {typo.findings[0].corrected_url}")


def main() -> None:
    n_links = int(sys.argv[1]) if len(sys.argv) > 1 else 3000
    how_many = int(sys.argv[2]) if len(sys.argv) > 2 else 8

    world = generate_world(
        WorldConfig(n_links=n_links, target_sample=n_links, seed=13)
    )
    collector = Collector(world.encyclopedia, world.site_rankings)
    records = collector.to_dataset(
        sample_iabot_marked(collector.collect(), how_many, seed=99)
    ).records

    detector = Soft404Detector(
        world.fetcher(), RngRegistry(1).stream("forensics")
    )
    validator = RedirectValidator(world.cdx)
    for record in records:
        investigate(world, record, detector, validator)


if __name__ == "__main__":
    main()
