"""Quickstart: generate a universe, run the paper's study, read the report.

This is the five-line version of the whole reproduction:

    world  = generate_world(WorldConfig(...))   # web + archive + wiki + IABot
    report = Study.from_world(world).run()      # §3, §4, §5
    print(report.summary())

Run:  python examples/quickstart.py [n_links]
"""

import sys
import time

from repro.analysis.study import Study
from repro.dataset.worldgen import WorldConfig, generate_world
from repro.net.status import Outcome
from repro.reporting.figures import render_bar_chart


def main() -> None:
    n_links = int(sys.argv[1]) if len(sys.argv) > 1 else 3000

    print(f"Generating a universe of {n_links} wiki links ...")
    start = time.time()
    world = generate_world(
        WorldConfig(n_links=n_links, target_sample=n_links, seed=2022)
    )
    print(f"  {world.summary()}")
    print(f"  ({time.time() - start:.1f}s)")

    print("\nRunning the measurement study (March 2022) ...")
    report = Study.from_world(world).run()

    print()
    print(
        render_bar_chart(
            {o.value: c for o, c in report.counts.items()},
            title="What the 'permanently dead' links do on the live web today",
        )
    )
    print()
    print(report.summary())
    print()
    alive = [v for v in report.soft404_verdicts if v.genuinely_alive]
    if alive:
        print("A few 'permanently dead' links that work fine today:")
        for verdict in alive[:3]:
            print(f"  {verdict.url}")
        print(
            "  (the paper's §3: pages moved and their sites added a "
            "redirect only after IABot had marked them)"
        )


if __name__ == "__main__":
    main()
