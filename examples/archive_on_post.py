"""The paper's fix, as an editing gadget: verify + archive on post.

§5.1's implication: "whenever a link is posted, the liveness of the
link is confirmed and an archived copy is captured soon thereafter" —
and users should be "alerted if that URL is dysfunctional". This
example builds that gadget from the library's parts (Save Page Now +
the wikitext layer) and plays out the counterfactual:

1. In 2010 an editor cites two URLs: a real page and a typo'd one.
   The gadget saves the real page (usable copy secured) and warns
   about the typo before it ever reaches the article.
2. In 2014 the real page dies.
3. In 2019 IABot scans the article — and patches the reference with
   the day-one archived copy instead of marking it permanently dead.

Run:  python examples/archive_on_post.py
"""

from repro.archive.availability import AvailabilityApi, AvailabilityPolicy
from repro.archive.crawler import ArchiveCrawler
from repro.archive.savepagenow import SaveOutcome, SavePageNow
from repro.archive.store import SnapshotStore
from repro.clock import SimTime
from repro.iabot.archive_client import IABotArchiveClient
from repro.iabot.bot import InternetArchiveBot
from repro.iabot.checker import LinkChecker
from repro.web.page import Page, PageFate
from repro.web.site import Site
from repro.web.world import LiveWeb
from repro.wiki.encyclopedia import Encyclopedia, PERMADEAD_CATEGORY
from repro.wiki.templates import cite_web

POSTED = SimTime.from_ymd(2010, 4, 2)
DIES = SimTime.from_ymd(2014, 9, 9)
BOT_RUNS = SimTime.from_ymd(2019, 5, 20)

GOOD = "http://journal.example.org/archive/volume-7/paper-12.html"
TYPO = "http://journal.example.org/archive/volume-7/paper12.html"  # missing '-'


def build_world() -> LiveWeb:
    web = LiveWeb()
    site = Site(
        hostname="journal.example.org",
        seed="gadget",
        created_at=SimTime.from_ymd(2005, 1, 1),
    )
    site.add_page(
        Page(
            path_query="/archive/volume-7/paper-12.html",
            created_at=SimTime.from_ymd(2008, 1, 1),
            fate=PageFate.DELETED,
            died_at=DIES,
        )
    )
    web.add_site(site)
    return web


def main() -> None:
    web = build_world()
    store = SnapshotStore()
    spn = SavePageNow(ArchiveCrawler(web.fetcher(), store))
    enc = Encyclopedia()

    # -- the gadget: verify + archive before accepting a citation ---------
    print("Editor tries to cite two URLs in 2010:\n")
    accepted = []
    for url in (GOOD, TYPO):
        result = spn.save(url, POSTED)
        if result.link_looks_alive:
            print(f"  OK      {url}")
            print(f"          archived: {result.snapshot.describe()}")
            accepted.append(url)
        else:
            print(f"  WARNING {url}")
            print(f"          the URL does not work ({result.outcome.value});")
            print("          citation rejected — check for typos!")
    print()

    refs = "\n".join(
        "* " + cite_web(url, "Volume 7, paper 12").render() for url in accepted
    )
    enc.create_article(
        "Gadget Demo", POSTED, "CarefulEditor",
        f"Demo article.\n\n== References ==\n{refs}\n",
    )

    # -- years later: the page dies, IABot scans ---------------------------------
    bot = InternetArchiveBot(
        enc,
        LinkChecker(web.fetcher()),
        IABotArchiveClient(
            AvailabilityApi(store, AvailabilityPolicy(seed="gadget"))
        ),
    )
    stats = bot.run_sweep(BOT_RUNS)
    print(f"IABot in 2019: patched={stats.patched}, "
          f"marked permanently dead={stats.marked_permadead}")
    print()
    print(enc.article("Gadget Demo").wikitext)
    permadead = enc.articles_in_category(PERMADEAD_CATEGORY)
    print(f"Articles with permanently dead links: {list(permadead) or 'none'}")
    print()
    print("With verify+archive-on-post, the dead reference was patched from")
    print("its day-one snapshot, and the typo never entered the article —")
    print("both 'permanently dead' outcomes prevented (§5 implications).")


if __name__ == "__main__":
    main()
