"""Reproduce the WaybackMedic rescue event (§4.1-§4.2 implications).

After the authors reported their findings, the Internet Archive ran
WaybackMedic over every link IABot had marked permanently dead; its
patient lookups patched 20,080 of them. This example replays that
intervention on a generated world, in two passes:

1. patient Availability-API lookups (no timeout) — rescues the links
   IABot's bounded lookups missed (§4.1);
2. the same, plus the paper's §4.2 proposal: validated archived
   redirections as patches.

Run:  python examples/rescue_with_medic.py [n_links]
"""

import sys

from repro.analysis.redirects import RedirectValidator
from repro.dataset.worldgen import WorldConfig, generate_world
from repro.iabot.medic import WaybackMedic
from repro.reporting.tables import render_table
from repro.wiki.encyclopedia import PERMADEAD_CATEGORY


def main() -> None:
    n_links = int(sys.argv[1]) if len(sys.argv) > 1 else 3000
    print(f"Generating a universe of {n_links} wiki links ...")
    world = generate_world(
        WorldConfig(n_links=n_links, target_sample=n_links, seed=7)
    )
    before = len(world.encyclopedia.articles_in_category(PERMADEAD_CATEGORY))
    print(f"  articles with permanently dead links before the medic: {before}")

    validator = RedirectValidator(world.cdx)
    medic = WaybackMedic(
        world.encyclopedia,
        world.availability,
        redirect_finder=lambda url, marked_at: validator.find_valid_redirect_copy(
            url, before=None
        ),
    )
    report = medic.run(world.study_time)

    after = len(world.encyclopedia.articles_in_category(PERMADEAD_CATEGORY))
    print()
    print(
        render_table(
            headers=["quantity", "count"],
            rows=[
                ["permanently dead references examined", report.links_examined],
                ["patched with a missed 200 copy (§4.1)", report.patched_with_200_copy],
                ["patched with a validated redirect (§4.2)", report.patched_with_validated_redirect],
                ["still permanently dead", report.still_permadead],
                ["category size before", before],
                ["category size after", after],
            ],
            title="WaybackMedic run",
        )
    )
    rescued = report.patched_total
    print()
    print(
        f"The medic rescued {rescued} of {report.links_examined} "
        f"({100.0 * rescued / max(report.links_examined, 1):.1f}%) — the paper "
        "estimates ~11% recoverable via patient lookups plus ~5% via "
        "validated redirections."
    )


if __name__ == "__main__":
    main()
