"""Watch InternetArchiveBot work on one article, edit by edit.

Builds a small hand-crafted web (one site with a healthy page, a dead
page with an archived copy, and a dead page the archive never saw),
posts all three as references on a Wikipedia article, then runs the
bot and prints the article's wikitext before and after — showing a
patch (archive-url added) and a "permanent dead link" marking side by
side, exactly like the paper's Figure 1.

Run:  python examples/bot_on_article.py
"""

from repro.archive.availability import AvailabilityApi, AvailabilityPolicy
from repro.archive.crawler import ArchiveCrawler
from repro.archive.store import SnapshotStore
from repro.clock import SimTime
from repro.iabot.archive_client import IABotArchiveClient
from repro.iabot.bot import InternetArchiveBot
from repro.iabot.checker import LinkChecker
from repro.web.page import Page, PageFate
from repro.web.site import Site
from repro.web.world import LiveWeb
from repro.wiki.encyclopedia import Encyclopedia, PERMADEAD_CATEGORY
from repro.wiki.templates import cite_web

SITE_BORN = SimTime.from_ymd(2004, 6, 1)
PAGES_BORN = SimTime.from_ymd(2006, 3, 1)
POSTED = SimTime.from_ymd(2009, 10, 12)
CRAWLED = SimTime.from_ymd(2010, 7, 4)
DIED = SimTime.from_ymd(2013, 2, 17)
BOT_RUNS = SimTime.from_ymd(2019, 5, 20)


def main() -> None:
    # -- the web ------------------------------------------------------------
    web = LiveWeb()
    site = Site(hostname="www.mars-gazette.com", seed="demo", created_at=SITE_BORN)
    site.add_page(Page(path_query="/missions/overview.html", created_at=PAGES_BORN))
    for leaf in ("launch-report", "orbiter-technical-notes"):
        site.add_page(
            Page(
                path_query=f"/missions/{leaf}.html",
                created_at=PAGES_BORN,
                fate=PageFate.DELETED,
                died_at=DIED,
            )
        )
    web.add_site(site)

    # -- the archive: one dead page was captured in time, one never -----------
    store = SnapshotStore()
    crawler = ArchiveCrawler(web.fetcher(), store)
    crawler.capture("http://www.mars-gazette.com/missions/launch-report.html", CRAWLED)

    # -- the wiki ----------------------------------------------------------------
    enc = Encyclopedia()
    refs = "\n".join(
        "* " + cite_web(
            f"http://www.mars-gazette.com/missions/{leaf}.html", title
        ).render()
        for leaf, title in (
            ("overview", "Mission overview"),
            ("launch-report", "Launch report"),
            ("orbiter-technical-notes", "Orbiter technical notes"),
        )
    )
    enc.create_article(
        "Mars Gazette Probe", POSTED, "SpaceEditor",
        f"The '''Mars Gazette Probe''' is a fictional orbiter.\n\n"
        f"== References ==\n{refs}\n",
    )

    print("=== Article before IABot ===")
    print(enc.article("Mars Gazette Probe").wikitext)

    # -- the bot ------------------------------------------------------------------
    bot = InternetArchiveBot(
        enc,
        LinkChecker(web.fetcher()),
        IABotArchiveClient(
            AvailabilityApi(store, AvailabilityPolicy(seed="demo"))
        ),
    )
    stats = bot.run_sweep(BOT_RUNS)

    print("=== Article after IABot ===")
    print(enc.article("Mars Gazette Probe").wikitext)
    print(
        f"Bot stats: checked={stats.links_checked} alive={stats.links_alive} "
        f"patched={stats.patched} marked permanently dead={stats.marked_permadead}"
    )
    print(
        "Category members:",
        enc.articles_in_category(PERMADEAD_CATEGORY) or "(none)",
    )
    print()
    print("Note the asymmetry the paper studies: both dead links failed the")
    print("same GET check, but only the one with an archived copy could be")
    print("rescued — the other became a 'permanent dead link'.")


if __name__ == "__main__":
    main()
