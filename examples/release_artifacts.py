"""Produce the release artefacts for a study run.

Measurement papers ship their dataset and their figures; this example
generates both from one run:

- ``dataset.jsonl`` / ``dataset.csv`` — the collected permanently dead
  links with mined dates and rankings (lossless JSONL plus a
  spreadsheet-friendly CSV);
- ``report.md`` — the full study write-up with every figure rendered;
- a representativeness check of the released sample against a second,
  independently drawn control sample.

Run:  python examples/release_artifacts.py [n_links] [out_dir]
"""

import os
import sys

from repro.analysis.representativeness import compare_datasets
from repro.analysis.study import Study
from repro.dataset.collector import Collector
from repro.dataset.export import save_dataset
from repro.dataset.sampler import sample_iabot_marked
from repro.dataset.worldgen import WorldConfig, generate_world
from repro.reporting.report import render_markdown_report


def main() -> None:
    n_links = int(sys.argv[1]) if len(sys.argv) > 1 else 2500
    out_dir = sys.argv[2] if len(sys.argv) > 2 else "release"
    os.makedirs(out_dir, exist_ok=True)

    print(f"Generating a universe of {n_links} links ...")
    world = generate_world(
        WorldConfig(n_links=n_links, target_sample=n_links, seed=20220315)
    )
    report = Study.from_world(world).run()

    # -- dataset files -----------------------------------------------------
    jsonl = os.path.join(out_dir, "dataset.jsonl")
    csv = os.path.join(out_dir, "dataset.csv")
    save_dataset(report.dataset, jsonl)
    save_dataset(report.dataset, csv)
    print(f"wrote {jsonl} ({len(report.dataset)} records)")
    print(f"wrote {csv}")

    # -- study report ------------------------------------------------------------
    md = os.path.join(out_dir, "report.md")
    with open(md, "w", encoding="utf-8") as handle:
        handle.write(
            render_markdown_report(
                report, title=f"Permanently dead links study (n={n_links})"
            )
        )
    print(f"wrote {md}")

    # -- representativeness check ----------------------------------------------------
    collector = Collector(world.encyclopedia, world.site_rankings)
    everything = collector.collect()
    control = collector.to_dataset(
        sample_iabot_marked(everything, len(report.dataset), seed=99),
        description="control sample",
    )
    check = compare_datasets(
        report.dataset,
        control,
        world.fetcher(),
        world.study_time,
        ks_threshold=0.15,
        tv_threshold=0.15,
    )
    print(f"representativeness: {check.describe()}")


if __name__ == "__main__":
    main()
