"""T-exec — sharded-executor scaling: study stage wall time vs workers.

Runs the per-record stage (§3 probe + §4 census + §4.2 validation)
over a slice of the benchmark sample at several worker counts and
prints each run's :class:`~repro.exec.StudyStats`. Every run must
produce the identical report — the speedup is free of result drift by
construction — so the assertion here is equivalence, and the timing
table is informational (a 1-CPU CI box will legitimately show none).
"""

from __future__ import annotations

import pytest

from repro.analysis.study import Study, StudyReport
from repro.exec import StudyExecutor
from repro.reporting.tables import render_table

#: Records per run: enough to amortise pool start-up, small enough to
#: keep three runs inside a benchmark session.
SLICE = 1200
WORKER_COUNTS = (1, 2, 4)

#: Reports from earlier parametrizations, for cross-count equivalence.
_runs: dict[int, StudyReport] = {}


@pytest.fixture(scope="module")
def base_study(world):
    """One collected study; each run re-wraps its (read-only) pieces."""
    return Study.from_world(world)


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_exec_scaling(benchmark, base_study, workers):
    records = base_study.records[:SLICE]

    def run() -> StudyReport:
        # Fresh Study per run: RNG streams advance during a run, and
        # every run must start from the same seeded state.
        study = Study(
            records=records,
            fetcher=base_study.fetcher,
            cdx=base_study.cdx,
            at=base_study.at,
        )
        return study.run(executor=StudyExecutor(workers=workers))

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    _runs[workers] = report

    print()
    print(f"-- {workers} worker(s) over {len(records)} records --")
    print(report.stats.summary())
    if workers != 1 and 1 in _runs:
        serial = _runs[1]
        assert report == serial, "parallel report diverged from serial"
        rows = [
            [
                w,
                r.stats.shards,
                r.stats.phase_seconds.get("probe+census", 0.0),
                (
                    serial.stats.phase_seconds.get("probe+census", 0.0)
                    / max(r.stats.phase_seconds.get("probe+census", 1e-9), 1e-9)
                ),
            ]
            for w, r in sorted(_runs.items())
        ]
        print(
            render_table(
                headers=["workers", "shards", "stage seconds", "speedup"],
                rows=rows,
                title="executor scaling (probe+census stage)",
            )
        )
    assert report.sample_size == len(records)
    assert report.stats.cdx_cache_hit_rate > 0.0
