"""T4-1 / T4-2 — what archived copies exist? (paper §4).

Regenerates §4.1 (11% of permanently dead links had initial-200 copies
before marking — IABot's availability timeouts hid them; WaybackMedic
rescues them with patient lookups) and §4.2 (of the remaining links,
3,776/8,918 had 3xx copies, of which 481 validate as non-erroneous via
sibling cross-examination, ~5% of the sample).
"""

from __future__ import annotations

from repro.analysis.copies import census_links
from repro.analysis.redirects import RedirectValidator
from repro.reporting.summary import ComparisonTable


def test_sec4_1_missed_200_copies(benchmark, world, report):
    sample = report.dataset.records[:500]

    def census_slice():
        return census_links(sample, world.cdx)

    benchmark(census_slice)

    table = ComparisonTable(title="§4.1: usable archived copies IABot missed")
    table.add(
        "had initial-200 copies before marking (% of sample)",
        paper=10.8,
        measured=100.0 * report.frac_pre_marking_200,
        tolerance=0.5,
    )
    print()
    print(table.render())
    print(
        f"  (raw: {report.n_pre_marking_200} of {report.sample_size}; "
        f"paper: 1,082 of 10,000)"
    )
    assert report.n_pre_marking_200 > 0
    assert table.all_within_band, table.failures()


def test_sec4_2_validated_redirect_copies(benchmark, world, report):
    validator = RedirectValidator(world.cdx)
    with_3xx = [
        c for c in report.censuses
        if not c.has_pre_marking_200 and c.has_pre_marking_3xx
    ]

    def validate_slice():
        verdicts = []
        for census in with_3xx[:200]:
            verdicts.append(validator.validate(census.pre_marking_3xx[0]))
        return verdicts

    benchmark(validate_slice)

    rest = max(report.n_rest, 1)
    table = ComparisonTable(title="§4.2: archived copies with redirections")
    table.add(
        "links with 3xx copies (% of rest)",
        paper=42.3,  # 3,776 / 8,918
        measured=100.0 * report.n_rest_with_pre_3xx / rest,
        tolerance=0.5,
    )
    table.add(
        "patchable via validated redirect (% of sample)",
        paper=4.8,
        measured=100.0 * report.frac_patchable_via_redirect,
        tolerance=0.7,
    )
    table.add(
        "validated among 3xx-copy links (%)",
        paper=12.7,  # 481 / 3,776
        measured=(
            100.0
            * report.n_valid_redirect_copy
            / max(report.n_rest_with_pre_3xx, 1)
        ),
        tolerance=0.8,
    )
    print()
    print(table.render())
    print(
        f"  (raw: {report.n_rest_with_pre_3xx} of {report.n_rest} rest-links "
        f"had 3xx copies; {report.n_valid_redirect_copy} validated; "
        "paper: 3,776 and 481)"
    )
    # Directional: most archived redirections are erroneous, but a
    # sizeable minority validates.
    assert 0 < report.n_valid_redirect_copy < report.n_rest_with_pre_3xx
    assert table.all_within_band, table.failures()
