"""Benchmark fixtures: one full-scale world per session.

The world scale is configurable so CI can run smaller:

    REPRO_BENCH_LINKS=26000 pytest benchmarks/ --benchmark-only

Defaults to 12,000 wiki links (~5,000 permanently dead links in the
sample), which reproduces every shape at about a third of the paper's
scale in a few minutes.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.study import Study
from repro.dataset.collector import Collector
from repro.dataset.sampler import sample_iabot_marked
from repro.dataset.worldgen import WorldConfig, generate_world

BENCH_LINKS = int(os.environ.get("REPRO_BENCH_LINKS", "12000"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "11"))
#: The paper samples 10,000; we sample proportionally to world size.
BENCH_SAMPLE = int(os.environ.get("REPRO_BENCH_SAMPLE", "10000"))


@pytest.fixture(scope="session")
def world():
    """The benchmark universe (built once per session)."""
    config = WorldConfig(
        n_links=BENCH_LINKS, target_sample=BENCH_SAMPLE, seed=BENCH_SEED
    )
    return generate_world(config)


@pytest.fixture(scope="session")
def report(world):
    """The full study over the benchmark universe."""
    return Study.from_world(world).run()


@pytest.fixture(scope="session")
def random_sample_dataset(world):
    """The paper's representativeness control: links sampled from the
    whole category rather than the alphabetical prefix."""
    collector = Collector(world.encyclopedia, world.site_rankings)
    collected = collector.collect()  # every category article
    sampled = sample_iabot_marked(
        collected, world.config.target_sample, seed=20220901
    )
    return collector.to_dataset(sampled, description="random sample")
