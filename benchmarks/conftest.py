"""Benchmark fixtures: one full-scale world per session.

The world scale is configurable so CI can run smaller:

    REPRO_BENCH_LINKS=26000 pytest benchmarks/ --benchmark-only

Defaults to 12,000 wiki links (~5,000 permanently dead links in the
sample), which reproduces every shape at about a third of the paper's
scale in a few minutes. ``REPRO_BENCH_WORKERS`` shards the session's
study run across worker processes (default 1: serial keeps the
benchmark numbers free of multiprocessing noise; any value yields the
same report).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.analysis.study import Study
from repro.backends import StackConfig
from repro.dataset.collector import Collector
from repro.dataset.sampler import sample_iabot_marked
from repro.dataset.worldgen import WorldConfig, generate_world
from repro.exec import StudyExecutor

BENCH_LINKS = int(os.environ.get("REPRO_BENCH_LINKS", "12000"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "11"))
#: The paper samples 10,000; we sample proportionally to world size.
BENCH_SAMPLE = int(os.environ.get("REPRO_BENCH_SAMPLE", "10000"))
BENCH_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))
#: Fault/retry posture for the session study (same env knobs as the
#: CLIs: REPRO_FAULT_PLAN / REPRO_FAULT_RATE / REPRO_RETRIES …);
#: defaults to the clean, retry-less stack the benchmarks report on.
STACK_CONFIG = StackConfig.from_env()

#: Where benches write their BENCH_*.json digests. Defaults to the
#: repo root (the committed copies EXPERIMENTS.md quotes); the smoke
#: test points it at a tmp dir so toy-scale runs never clobber them.
BENCH_OUT = Path(
    os.environ.get("REPRO_BENCH_OUT", Path(__file__).resolve().parent.parent)
)


@pytest.fixture(scope="session")
def paper_scale() -> bool:
    """Whether the world is big enough for paper-figure assertions.

    The ComparisonTable bands and headline shape claims reproduce the
    paper's percentages, which only stabilize near the full benchmark
    scale. The toy-scale smoke run (tests/test_bench_smoke.py) still
    executes every benchmark end-to-end — builds, measures, prints,
    writes digests — but skips the figure comparisons, which would
    hold a few-hundred-link world to paper-scale percentages.
    """
    return BENCH_LINKS >= 4000


@pytest.fixture(scope="session")
def bench_out():
    """Resolver for BENCH_*.json output paths (honors REPRO_BENCH_OUT)."""

    def resolve(name: str) -> Path:
        BENCH_OUT.mkdir(parents=True, exist_ok=True)
        return BENCH_OUT / name

    return resolve


@pytest.fixture(scope="session")
def world():
    """The benchmark universe (built once per session)."""
    config = WorldConfig(
        n_links=BENCH_LINKS, target_sample=BENCH_SAMPLE, seed=BENCH_SEED
    )
    return generate_world(config)


@pytest.fixture(scope="session")
def report(world):
    """The full study over the benchmark universe."""
    executor = StudyExecutor(workers=BENCH_WORKERS)
    return Study.from_world(
        world,
        faults=STACK_CONFIG.build_faults(),
        retry_policy=STACK_CONFIG.build_retry_policy(),
    ).run(executor=executor)


@pytest.fixture(scope="session")
def study_stats(report):
    """Execution accounting (phase timings, cache hit rates) for the
    session's study run."""
    return report.stats


@pytest.fixture(scope="session")
def random_sample_dataset(world):
    """The paper's representativeness control: links sampled from the
    whole category rather than the alphabetical prefix."""
    collector = Collector(world.encyclopedia, world.site_rankings)
    collected = collector.collect()  # every category article
    sampled = sample_iabot_marked(
        collected, world.config.target_sample, seed=20220901
    )
    return collector.to_dataset(sampled, description="random sample")
