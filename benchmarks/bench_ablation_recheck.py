"""ABL-3 — periodic re-checks of marked links (§3's implication).

IABot never re-checks a link it has marked, "to maximize efficiency".
The paper's implication: "ones that have previously been marked as
dead should be occasionally checked again". This ablation re-probes
every marked link at a series of dates between the markings and the
study, showing how the recoverable fraction grows as sites add
redirects and restore pages over time.
"""

from __future__ import annotations

from repro.analysis.live_status import classify_links
from repro.clock import SimTime
from repro.reporting.tables import render_table

RECHECK_DATES = (
    SimTime.from_ymd(2019, 6, 1),
    SimTime.from_ymd(2020, 6, 1),
    SimTime.from_ymd(2021, 6, 1),
    SimTime.from_ymd(2022, 3, 15),
)


def test_ablation_recheck_cadence(benchmark, world, report):
    records = report.dataset.records
    fetcher = world.fetcher()

    def sweep():
        recovered = {}
        for date in RECHECK_DATES:
            eligible = [r for r in records if r.marked_at < date]
            probes = classify_links(eligible, fetcher, date)
            recovered[date] = (
                sum(1 for p in probes if p.returned_200),
                len(eligible),
            )
        return recovered

    recovered = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for date in RECHECK_DATES:
        hits, eligible = recovered[date]
        rows.append(
            [date.isoformat(), eligible, hits, 100.0 * hits / max(eligible, 1)]
        )
    print()
    print(
        render_table(
            headers=["recheck date", "marked by then", "answer 200", "%"],
            rows=rows,
            title="ABL-3: what periodic re-checks of marked links would find",
        )
    )

    # Raw-200 recoveries at study time must match Figure 4's 200 bucket.
    final_hits, final_eligible = recovered[RECHECK_DATES[-1]]
    assert final_eligible == len(records)
    assert final_hits == report.n_final_200
    # The recoverable share is material — the whole point of the
    # implication ("the link might well work again in the future").
    assert final_hits / max(final_eligible, 1) > 0.05
