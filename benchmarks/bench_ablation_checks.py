"""ABL-5 — one deadness check vs several (§3's single-fetch finding).

The paper notes IABot "determines whether the link is dead by
attempting to fetch the link only once", and justifies it with the 95%
first-post-marking-copy-erroneous statistic. This ablation measures
the false-positive side directly: how many links that a single GET
calls dead would survive a 3-attempt check (retries on consecutive
days) — i.e. how many markings are transient-failure artefacts.
"""

from __future__ import annotations

from repro.iabot.checker import LinkChecker
from repro.reporting.tables import render_table


def test_ablation_checks_before_dead(benchmark, world, report):
    # Probe at each link's actual marking instant, where the bot's
    # decision was made.
    records = report.dataset.records

    def sweep():
        single = LinkChecker(world.fetcher(), checks_before_dead=1)
        triple = LinkChecker(world.fetcher(), checks_before_dead=3)
        dead_once = 0
        dead_thrice = 0
        for record in records:
            if single.check(record.url, record.marked_at).dead:
                dead_once += 1
            if triple.check(record.url, record.marked_at).dead:
                dead_thrice += 1
        return dead_once, dead_thrice, triple.checks_performed

    dead_once, dead_thrice, triple_fetches = benchmark.pedantic(
        sweep, rounds=1, iterations=1
    )

    n = len(records)
    rescued = dead_once - dead_thrice
    print()
    print(
        render_table(
            headers=["policy", "declared dead", "% of sample", "fetches"],
            rows=[
                ["1 check (IABot)", dead_once, 100.0 * dead_once / n, n],
                ["3 checks, daily", dead_thrice, 100.0 * dead_thrice / n, triple_fetches],
            ],
            title="ABL-5: deadness-check attempts vs declared-dead count",
        )
    )
    print(
        f"  {rescued} links ({100.0 * rescued / n:.1f}%) that fail one GET "
        "answer within three daily retries (flaky hosts)."
    )

    # These links were marked in-world, so a replay at the marking
    # instant must call nearly all of them dead.
    assert dead_once > n * 0.9
    # Retries can only rescue, never add deaths.
    assert dead_thrice <= dead_once
    # The rescue margin is the (small) flaky-host population — the
    # paper's observation that one check effectively suffices.
    assert rescued / n < 0.15
