"""T-obs — tracing overhead: the observability layer must be ~free.

Runs the same study slice with the tracer off and on and compares wall
time. The layer's contract is that the untraced hot path is untouched
(every hook is a ``tracer is None`` branch) and the traced path stays
within a few percent; the acceptance bar for the observability PR is
<= 5% overhead on the traced run.

Both arms measure **min of N interleaved rounds** (off, on, off, on,
...): the minimum is the run least disturbed by the machine, and
interleaving means background load cannot systematically favor one
variant. That is what makes a single-digit-percent bar assertable on
a shared box at all. The 5% bar is asserted on the service arm, whose
telemetry is deferred off the serving path; the study arm constructs
its spans eagerly and records whatever it measures (machine-dependent
— low single digits on a slow box, where span construction drowns in
stage work, to ~15% on a fast one) under a generous ceiling.

The **service-tier arm** applies the same contract to the serving
stack: the same clustered workload replayed with observability off
(no tracer, no audit log, no exemplars) and fully on (span tree +
per-request audit records + exemplar-carrying latency histograms).
The off run's wire bytes must be identical either way, and the
observed run must stay within the same 5% bar.

Writes ``BENCH_obs.json`` at the repo root with both arms' wall
times, overhead fractions, and volumes, so the numbers are auditable
from the working tree (EXPERIMENTS.md quotes them).

Both runs of each arm must produce the identical result —
observability that changed the measurement would be a bug, not
overhead.
"""

from __future__ import annotations

import gc
import json
import os
import time

import pytest

from repro.analysis.study import Study, StudyReport
from repro.exec import StudyExecutor
from repro.obs import Tracer
from repro.service import (
    AuditLog,
    ClusterConfig,
    ClusterService,
    LinkStatusIndex,
    ServerConfig,
    WorkloadConfig,
    generate_workload,
)


#: Records per run: enough stage work that per-record costs dominate
#: pool/world constants, small enough for two runs per session.
SLICE = 1200

#: Requests per service-tier arm run (shares the service bench knob).
SERVICE_REQUESTS = int(
    os.environ.get("REPRO_BENCH_SERVICE_REQUESTS", "20000")
)

#: Interleaved off/on measurement rounds per arm. The recorded walls
#: are the per-variant minima across rounds: one slow round (a busy
#: neighbor, a GC storm) cannot inflate either side, so the overhead
#: fraction is stable enough to assert a tight bar on directly.
ROUNDS = int(os.environ.get("REPRO_BENCH_OBS_ROUNDS", "7"))


@pytest.fixture(scope="module")
def base_study(world):
    """One collected study; each run re-wraps its (read-only) pieces."""
    return Study.from_world(world)


def test_obs_overhead(benchmark, base_study, bench_out):
    records = base_study.records[:SLICE]

    def run_once(traced: bool) -> tuple[StudyReport, float, int]:
        # Fresh Study per run: RNG streams advance during a run, and
        # every run must start from the same seeded state.
        study = Study(
            records=records,
            fetcher=base_study.fetcher,
            cdx=base_study.cdx,
            at=base_study.at,
        )
        tracer = Tracer() if traced else None
        gc.collect()  # start every round from the same heap state
        start = time.perf_counter()
        report = study.run(executor=StudyExecutor(workers=1), tracer=tracer)
        wall = time.perf_counter() - start
        return report, wall, len(tracer.spans) if tracer else 0

    def run() -> tuple[StudyReport, float, float, int]:
        off_walls: list[float] = []
        on_walls: list[float] = []
        baseline: StudyReport | None = None
        spans = 0
        for _ in range(ROUNDS):
            report, wall, _ = run_once(False)
            if baseline is None:
                baseline = report
            off_walls.append(wall)
            report, wall, spans = run_once(True)
            assert report == baseline, "tracing changed the measurement"
            on_walls.append(wall)
        return baseline, min(off_walls), min(on_walls), spans

    report, off_wall, on_wall, spans = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    overhead = on_wall / max(off_wall, 1e-9) - 1.0

    print()
    print(
        f"-- study arm: {len(records)} records, "
        f"min of {ROUNDS} interleaved rounds --"
    )
    print(f"untraced: {off_wall:.3f}s, traced: {on_wall:.3f}s")
    print(report.stats.summary())

    payload = {
        "records": len(records),
        "rounds": ROUNDS,
        "untraced_seconds": round(off_wall, 4),
        "traced_seconds": round(on_wall, 4),
        "overhead_frac": round(overhead, 4),
        "spans": spans,
    }
    out = bench_out("BENCH_obs.json")
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"overhead: {overhead:+.1%} -> {out.name}")
    print(
        "span volume: "
        + ", ".join(
            f"{kind}={count}"
            for kind, count in kind_counts_of(report, spans).items()
        )
    )
    # Generous ceiling: the study arm's spans are built eagerly, so
    # its relative cost scales with how fast the stage work runs on
    # the box. The 5% bar is asserted on the (deferred) service arm.
    assert overhead < 0.25, f"tracing overhead {overhead:.1%}"


def kind_counts_of(report: StudyReport, spans: int) -> dict[str, int]:
    """Span-kind summary for the printout (report-derived, cheap)."""
    return {
        "total": spans,
        "records": len(report.probes),
        "phases": len(report.stats.phase_seconds),
    }


# -- service-tier arm ------------------------------------------------------------


@pytest.fixture(scope="module")
def service_workload(report):
    """The clustered workload both service-arm variants replay."""
    index = LinkStatusIndex.build(report)
    workload = generate_workload(
        [entry.url for entry in index.entries],
        WorkloadConfig(
            n_requests=SERVICE_REQUESTS,
            offered_rps=2500.0,
            seed=7,
            aggregate_fraction=0.05,
            unknown_fraction=0.05,
        ),
    )
    return index, workload


def test_service_obs_overhead(benchmark, service_workload, bench_out):
    index, workload = service_workload

    def serve(observed: bool):
        tracer = Tracer() if observed else None
        audit = AuditLog() if observed else None
        service = ClusterService(
            index,
            ServerConfig(),
            ClusterConfig(n_shards=2, replicas_per_shard=2),
            tracer=tracer,
            audit=audit,
        )
        gc.collect()  # start every round from the same heap state
        start = time.perf_counter()
        result = service.serve(workload)
        wall = time.perf_counter() - start
        # Everything below is off the measured wall — including span
        # and audit materialization, which by design happens on first
        # read, not inside serve().
        wire = [response.to_wire() for response in result.responses]
        return (
            wire,
            wall,
            len(tracer.spans) if tracer else 0,
            len(audit) if audit else 0,
        )

    def run() -> tuple[float, float, int, int]:
        off_walls: list[float] = []
        on_walls: list[float] = []
        spans = audited = 0
        off_wire = None
        for _ in range(ROUNDS):
            wire, wall, _, _ = serve(False)
            if off_wire is None:
                off_wire = wire
            off_walls.append(wall)
            wire, wall, spans, audited = serve(True)
            assert wire == off_wire, "observability changed the wire bytes"
            on_walls.append(wall)
        return min(off_walls), min(on_walls), spans, audited

    off_wall, on_wall, spans, audited = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    overhead = on_wall / max(off_wall, 1e-9) - 1.0

    print()
    print(
        f"-- service arm: {len(workload)} requests, "
        f"min of {ROUNDS} interleaved rounds --"
    )
    print(
        f"off: {off_wall:.3f}s, on: {on_wall:.3f}s "
        f"(spans: {spans}, audit records: {audited})"
    )

    out = bench_out("BENCH_obs.json")
    payload = json.loads(out.read_text()) if out.exists() else {}
    payload["service"] = {
        "requests": len(workload),
        "rounds": ROUNDS,
        "off_seconds": round(off_wall, 4),
        "on_seconds": round(on_wall, 4),
        "overhead_frac": round(overhead, 4),
        "spans": spans,
        "audit_records": audited,
    }
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"service obs overhead: {overhead:+.1%} -> {out.name}")
    # The observability PR's acceptance bar, asserted directly.
    assert overhead < 0.05, f"service obs overhead {overhead:.1%}"
