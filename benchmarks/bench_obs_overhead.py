"""T-obs — tracing overhead: the observability layer must be ~free.

Runs the same study slice with the tracer off and on and compares wall
time. The layer's contract is that the untraced hot path is untouched
(every hook is a ``tracer is None`` branch) and the traced path stays
within a few percent; the acceptance bar for the observability PR is
<= 5% overhead on the traced run.

Writes ``BENCH_obs.json`` at the repo root with both wall times, the
overhead fraction, and the span volume, so the number is auditable
from the working tree (EXPERIMENTS.md quotes it).

Both runs must produce the identical report — tracing that changed the
measurement would be a bug, not overhead.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.analysis.study import Study, StudyReport
from repro.exec import StudyExecutor
from repro.obs import Tracer, kind_counts


#: Records per run: enough stage work that per-record costs dominate
#: pool/world constants, small enough for two runs per session.
SLICE = 1200

#: (report, wall seconds, span count) per variant, for the comparison.
_runs: dict[bool, tuple[StudyReport, float, int]] = {}


@pytest.fixture(scope="module")
def base_study(world):
    """One collected study; each run re-wraps its (read-only) pieces."""
    return Study.from_world(world)


@pytest.mark.parametrize("traced", (False, True), ids=("off", "on"))
def test_obs_overhead(benchmark, base_study, traced, bench_out):
    records = base_study.records[:SLICE]

    def run() -> tuple[StudyReport, float, int]:
        # Fresh Study per run: RNG streams advance during a run, and
        # every run must start from the same seeded state.
        study = Study(
            records=records,
            fetcher=base_study.fetcher,
            cdx=base_study.cdx,
            at=base_study.at,
        )
        tracer = Tracer() if traced else None
        start = time.perf_counter()
        report = study.run(executor=StudyExecutor(workers=1), tracer=tracer)
        wall = time.perf_counter() - start
        return report, wall, len(tracer.spans) if tracer else 0

    report, wall, spans = benchmark.pedantic(run, rounds=1, iterations=1)
    _runs[traced] = (report, wall, spans)

    print()
    print(f"-- tracer {'on' if traced else 'off'}, {len(records)} records --")
    print(f"wall: {wall:.3f}s, spans: {spans}")
    print(report.stats.summary())

    if traced and False in _runs:
        untraced_report, untraced_wall, _ = _runs[False]
        assert report == untraced_report, "tracing changed the measurement"
        overhead = wall / max(untraced_wall, 1e-9) - 1.0
        payload = {
            "records": len(records),
            "untraced_seconds": round(untraced_wall, 4),
            "traced_seconds": round(wall, 4),
            "overhead_frac": round(overhead, 4),
            "spans": spans,
        }
        out = bench_out("BENCH_obs.json")
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"overhead: {overhead:+.1%} -> {out.name}")
        print(
            "span volume: "
            + ", ".join(
                f"{kind}={count}"
                for kind, count in kind_counts_of(report, spans).items()
            )
        )
        # Generous ceiling: single-round wall clocks are noisy on a
        # loaded CI box; the PR's acceptance bar (5%) is checked on
        # the recorded JSON from a quiet run.
        assert overhead < 0.25, f"tracing overhead {overhead:.1%}"


def kind_counts_of(report: StudyReport, spans: int) -> dict[str, int]:
    """Span-kind summary for the printout (report-derived, cheap)."""
    return {
        "total": spans,
        "records": len(report.probes),
        "phases": len(report.stats.phase_seconds),
    }
