"""T-serve — the link-status service under increasing offered load.

Builds one :class:`~repro.service.LinkStatusIndex` from the session's
full-scale study report, then replays seeded Zipf workloads at several
offered loads against a fixed :class:`ServerConfig` — below capacity,
at capacity, and past it — recording for each level:

- virtual throughput and p50/p99 virtual latency (the deterministic
  figures the service tests pin);
- cache hit rate and coalescing volume (what micro-batching buys);
- shed rate (what admission control costs past capacity);
- real wall time to serve the replay (the only nondeterministic
  number, reported for context).

Writes ``BENCH_service.json`` at the repo root so EXPERIMENTS.md can
quote the sweep from the working tree. The expected shape: hit rate
and coalescing climb with load (hotter Zipf head per unit time), shed
rate stays ~0 until offered load crosses the token rate, then grows
while p99 for *served* requests stays bounded by the queue depth — the
degradation admission control promises.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.service import (
    LinkStatusIndex,
    LinkStatusService,
    ServerConfig,
    WorkloadConfig,
    generate_workload,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Requests replayed per load level.
N_REQUESTS = int(os.environ.get("REPRO_BENCH_SERVICE_REQUESTS", "20000"))

#: The fixed capacity every level runs against.
CONFIG = ServerConfig(rate_rps=2_000.0, burst=16, queue_limit=64)

#: Offered load as a multiple of the configured token rate.
LEVELS: tuple[float, ...] = (0.5, 1.0, 2.0, 4.0)

_results: dict[float, dict] = {}


@pytest.fixture(scope="module")
def service_index(report) -> LinkStatusIndex:
    return LinkStatusIndex.build(report)


@pytest.mark.parametrize("level", LEVELS, ids=lambda x: f"{x:g}x")
def test_service_under_load(benchmark, service_index, level):
    offered_rps = CONFIG.rate_rps * level
    workload = generate_workload(
        [entry.url for entry in service_index.entries],
        WorkloadConfig(
            n_requests=N_REQUESTS,
            offered_rps=offered_rps,
            seed=11,
            aggregate_fraction=0.02,
            unknown_fraction=0.01,
        ),
    )

    def run():
        service = LinkStatusService(service_index, CONFIG)
        start = time.perf_counter()
        result = service.serve(workload, mode="serial")
        wall = time.perf_counter() - start
        return result, wall

    result, wall = benchmark.pedantic(run, rounds=1, iterations=1)

    digest = result.as_dict()
    digest.update(
        offered_rps=offered_rps,
        load_multiple=level,
        wall_seconds=round(wall, 4),
        wall_rps=round(len(workload) / wall, 1) if wall > 0 else None,
    )
    _results[level] = digest

    print()
    print(f"-- offered {offered_rps:g} rps ({level:g}x capacity) --")
    print(result.summary())
    print(f"replay wall: {wall:.3f}s ({digest['wall_rps']} req/s real)")

    # Below capacity nothing sheds; past it, shedding must engage.
    if level <= 1.0:
        assert digest["shed_rate"] < 0.05
    if level >= 2.0:
        assert digest["shed_rate"] > 0.0

    if level == LEVELS[-1]:
        payload = {
            "n_requests": N_REQUESTS,
            "index_entries": len(service_index),
            "index_version": service_index.version,
            "config": {
                "rate_rps": CONFIG.rate_rps,
                "burst": CONFIG.burst,
                "queue_limit": CONFIG.queue_limit,
                "max_batch": CONFIG.max_batch,
                "max_wait_ms": CONFIG.max_wait_ms,
                "cache_capacity": CONFIG.cache_capacity,
                "cache_ttl_ms": CONFIG.cache_ttl_ms,
            },
            "levels": [_results[key] for key in sorted(_results)],
        }
        out = REPO_ROOT / "BENCH_service.json"
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {out.name} ({len(_results)} load levels)")
