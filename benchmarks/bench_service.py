"""T-serve — the link-status service under load, solo and clustered.

Two sweeps over one :class:`~repro.service.LinkStatusIndex` built from
the session's full-scale study report:

**Load sweep (single node).** Seeded Zipf workloads replayed at
several offered loads against a fixed :class:`ServerConfig` — below
capacity, at capacity, and past it — recording virtual throughput,
p50/p99 virtual latency, cache hit rate, coalescing volume, and shed
rate. Expected shape: hit rate and coalescing climb with load (hotter
Zipf head per unit time), shed rate stays ~0 until offered load
crosses the token rate, then grows while p99 for *served* requests
stays bounded by the queue depth — the degradation admission control
promises.

**Replica-scaling sweep (cluster).** Three traffic shapes — Zipf
hot-key skew, a flash crowd, a diurnal cycle — each served by the
cluster tier at 4 shards x {1, 2, 4} replicas with a small congestion
tax per in-flight request (the knob that makes replica count visible
in the latency distribution; it defaults to zero everywhere else so
the byte-equivalence contract is untouched). Nine runs x
``REPRO_BENCH_CLUSTER_REQUESTS`` requests (default 120,000) is the
million-request sweep EXPERIMENTS.md quotes. Expected shape: p99
stays bounded (non-increasing within slack) as replicas scale — the
single replica pays the congestion tax for each burst's full queue
depth while the scaled fleets split it, and coalescing plus the
result cache absorb the Zipf head before it reaches the index, so
most of the distribution is pinned by the global admission queue
either way. Shed rate is *identical* across replica counts —
admission is global and arrival-driven, so adding replicas never
creates (or absorbs) shedding.

Writes ``BENCH_service.json`` (via the ``bench_out`` resolver, so the
smoke test can redirect it) with both sweeps in one payload.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.service import (
    ClusterConfig,
    ClusterService,
    LinkStatusIndex,
    LinkStatusService,
    ServerConfig,
    WorkloadConfig,
    generate_workload,
)

#: Requests replayed per single-node load level.
N_REQUESTS = int(os.environ.get("REPRO_BENCH_SERVICE_REQUESTS", "20000"))

#: Requests per cluster run (x 9 runs = the million-request sweep).
CLUSTER_REQUESTS = int(
    os.environ.get("REPRO_BENCH_CLUSTER_REQUESTS", "120000")
)

#: The fixed capacity every level runs against.
CONFIG = ServerConfig(rate_rps=2_000.0, burst=16, queue_limit=64)

#: Offered load as a multiple of the configured token rate.
LEVELS: tuple[float, ...] = (0.5, 1.0, 2.0, 4.0)

#: Cluster topology under test: shards fixed, replicas swept.
N_SHARDS = 4
REPLICA_LEVELS: tuple[int, ...] = (1, 2, 4)

#: Per-in-flight-request latency tax (virtual ms). Zero would make
#: every replica count serve identical latencies (the equivalence
#: contract); a positive value models per-replica queueing pressure,
#: and it has to be sizable relative to ``index_latency_ms`` to bite —
#: per-replica outstanding is only a handful of requests, so a token
#: tax disappears into the batch deadline. At 10 ms the overloaded
#: single-replica runs visibly pay for their queue depth and the sweep
#: can show what replicas buy.
CONGESTION_MS = 10.0

#: Traffic shapes for the replica-scaling sweep. ``load`` is the
#: *base* offered load as a multiple of capacity; flash and diurnal
#: swing above it mid-run.
SCENARIOS: dict[str, dict] = {
    "zipf_hot": {"zipf_alpha": 1.5, "pattern": "poisson", "load": 1.0},
    "flash_crowd": {"zipf_alpha": 1.1, "pattern": "flash", "load": 0.8},
    "diurnal": {"zipf_alpha": 1.1, "pattern": "diurnal", "load": 1.0},
}

_results: dict[float, dict] = {}
_cluster_results: dict[tuple[str, int], dict] = {}


@pytest.fixture(scope="module")
def service_index(report) -> LinkStatusIndex:
    return LinkStatusIndex.build(report)


def _write_payload(bench_out, service_index) -> None:
    """Write whatever both sweeps have produced so far (idempotent)."""
    payload = {
        "index_entries": len(service_index),
        "index_version": service_index.version,
        "config": {
            "rate_rps": CONFIG.rate_rps,
            "burst": CONFIG.burst,
            "queue_limit": CONFIG.queue_limit,
            "max_batch": CONFIG.max_batch,
            "max_wait_ms": CONFIG.max_wait_ms,
            "cache_capacity": CONFIG.cache_capacity,
            "cache_ttl_ms": CONFIG.cache_ttl_ms,
        },
        "single_node": {
            "n_requests": N_REQUESTS,
            "levels": [_results[key] for key in sorted(_results)],
        },
        "cluster": {
            "n_requests_per_run": CLUSTER_REQUESTS,
            "total_requests": len(_cluster_results) * CLUSTER_REQUESTS
            + len(_results) * N_REQUESTS,
            "n_shards": N_SHARDS,
            "replica_levels": list(REPLICA_LEVELS),
            "policy": "least_outstanding",
            "congestion_ms_per_inflight": CONGESTION_MS,
            "scenarios": {
                name: {
                    "workload": dict(spec),
                    "replicas": [
                        _cluster_results[key]
                        for key in sorted(_cluster_results)
                        if key[0] == name
                    ],
                }
                for name, spec in SCENARIOS.items()
            },
        },
    }
    out = bench_out("BENCH_service.json")
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"wrote {out.name} ({len(_results)} load levels, "
        f"{len(_cluster_results)} cluster runs)"
    )


@pytest.mark.parametrize("level", LEVELS, ids=lambda x: f"{x:g}x")
def test_service_under_load(benchmark, bench_out, service_index, level):
    offered_rps = CONFIG.rate_rps * level
    workload = generate_workload(
        [entry.url for entry in service_index.entries],
        WorkloadConfig(
            n_requests=N_REQUESTS,
            offered_rps=offered_rps,
            seed=11,
            aggregate_fraction=0.02,
            unknown_fraction=0.01,
        ),
    )

    def run():
        service = LinkStatusService(service_index, CONFIG)
        start = time.perf_counter()
        result = service.serve(workload, mode="serial")
        wall = time.perf_counter() - start
        return result, wall

    result, wall = benchmark.pedantic(run, rounds=1, iterations=1)

    digest = result.as_dict()
    digest.update(
        offered_rps=offered_rps,
        load_multiple=level,
        wall_seconds=round(wall, 4),
        wall_rps=round(len(workload) / wall, 1) if wall > 0 else None,
    )
    _results[level] = digest

    print()
    print(f"-- offered {offered_rps:g} rps ({level:g}x capacity) --")
    print(result.summary())
    print(f"replay wall: {wall:.3f}s ({digest['wall_rps']} req/s real)")

    # Below capacity nothing sheds; past it, shedding must engage.
    if level <= 1.0:
        assert digest["shed_rate"] < 0.05
    if level >= 2.0:
        assert digest["shed_rate"] > 0.0

    if level == LEVELS[-1]:
        _write_payload(bench_out, service_index)


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
@pytest.mark.parametrize("replicas", REPLICA_LEVELS, ids=lambda r: f"r{r}")
def test_cluster_replica_scaling(
    benchmark, bench_out, service_index, scenario, replicas
):
    spec = SCENARIOS[scenario]
    offered_rps = CONFIG.rate_rps * spec["load"]
    workload = generate_workload(
        [entry.url for entry in service_index.entries],
        WorkloadConfig(
            n_requests=CLUSTER_REQUESTS,
            offered_rps=offered_rps,
            seed=11,
            zipf_alpha=spec["zipf_alpha"],
            pattern=spec["pattern"],
            aggregate_fraction=0.02,
            unknown_fraction=0.01,
        ),
    )
    cluster_config = ClusterConfig(
        n_shards=N_SHARDS,
        replicas_per_shard=replicas,
        policy="least_outstanding",
        congestion_ms_per_inflight=CONGESTION_MS,
    )

    def run():
        service = ClusterService(service_index, CONFIG, cluster_config)
        start = time.perf_counter()
        result = service.serve(workload, mode="serial")
        wall = time.perf_counter() - start
        return result, wall

    result, wall = benchmark.pedantic(run, rounds=1, iterations=1)

    digest = result.as_dict()
    digest.update(
        scenario=scenario,
        replicas_per_shard=replicas,
        offered_rps=offered_rps,
        wall_seconds=round(wall, 4),
        wall_rps=round(len(workload) / wall, 1) if wall > 0 else None,
    )
    _cluster_results[(scenario, replicas)] = digest

    print()
    print(
        f"-- {scenario}: {N_SHARDS} shards x {replicas} replicas, "
        f"offered {offered_rps:g} rps --"
    )
    print(result.summary())
    print(f"replay wall: {wall:.3f}s ({digest['wall_rps']} req/s real)")

    # Chaos is off: the cluster may shed only through global admission,
    # which is arrival-driven — so scaling replicas must keep the shed
    # rate bounded near the single-replica baseline, and the congestion
    # tax must make p99 non-increasing as replicas scale.
    baseline = _cluster_results.get((scenario, REPLICA_LEVELS[0]))
    if baseline is not None and replicas > REPLICA_LEVELS[0]:
        assert digest["shed_rate"] <= baseline["shed_rate"] + 0.02
        assert digest["p99_ms"] <= baseline["p99_ms"] * 1.10 + 0.5

    if len(_cluster_results) == len(SCENARIOS) * len(REPLICA_LEVELS):
        _write_payload(bench_out, service_index)
