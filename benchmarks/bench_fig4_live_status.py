"""FIG4 — live-web status of permanently dead links (paper Figure 4).

Regenerates the five-bucket breakdown (DNS Failure / Timeout / 404 /
200 / Other) for the dataset and the random-sample control. Paper
claims: over 70% of links are DNS failures or 404s; roughly 16% of
"permanently dead" links answer 200 today.
"""

from __future__ import annotations

from repro.analysis.live_status import classify_links, outcome_counts
from repro.net.status import Outcome
from repro.reporting.figures import render_bar_chart
from repro.reporting.summary import ComparisonTable

#: Paper Figure 4 percentages (read off the reported bars / text).
PAPER_PCT = {
    Outcome.DNS_FAILURE: 28.0,
    Outcome.TIMEOUT: 6.0,
    Outcome.HTTP_404: 44.0,
    Outcome.HTTP_200: 16.5,
    Outcome.OTHER: 5.5,
}


def test_fig4_live_status(
    benchmark, world, report, random_sample_dataset, paper_scale
):
    # Benchmark the probe machinery on a slice (the full-sample result
    # is already in the report fixture).
    sample = report.dataset.records[:500]
    fetcher = world.fetcher()

    def probe_slice():
        return classify_links(sample, fetcher, world.study_time)

    benchmark(probe_slice)

    counts = report.counts
    n = report.sample_size
    control_counts = outcome_counts(
        classify_links(
            random_sample_dataset.records, world.fetcher(), world.study_time
        )
    )

    print()
    print(
        render_bar_chart(
            {o.value: c for o, c in counts.items()},
            title=f"Figure 4: live-web outcome, our dataset (n={n})",
        )
    )
    print(
        render_bar_chart(
            {o.value: c for o, c in control_counts.items()},
            title=(
                "Figure 4: live-web outcome, random sample "
                f"(n={len(random_sample_dataset)})"
            ),
        )
    )

    table = ComparisonTable(title="Figure 4 vs paper (% of sample)")
    for outcome, paper_pct in PAPER_PCT.items():
        table.add(
            outcome.value,
            paper=paper_pct,
            measured=100.0 * counts[outcome] / n,
            tolerance=0.6,
        )
    print(table.render())

    if not paper_scale:
        return
    # Headline shape claims.
    dead_share = (counts[Outcome.DNS_FAILURE] + counts[Outcome.HTTP_404]) / n
    assert dead_share > 0.6  # paper: "the vast majority (over 70%)"
    assert counts[Outcome.HTTP_200] / n > 0.08  # the surprising 200s
    assert table.all_within_band, table.failures()

    # Representativeness: the two samples agree bucket by bucket.
    for outcome in PAPER_PCT:
        ours = counts[outcome] / n
        control = control_counts[outcome] / max(len(random_sample_dataset), 1)
        assert abs(ours - control) < 0.05
