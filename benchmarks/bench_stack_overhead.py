"""T-stack — middleware indirection: the layer stack must be ~free.

The ``repro.backends`` refactor replaced the hand-written caching
wrappers (PR 1's ``CachingFetcher`` family) with a composed layer
stack (cache -> trace -> retry -> base). Its acceptance bar: the
generic composition — one extra frame per layer plus the injected
key-function indirection — costs <= 5% over the specialized wrapper
it replaced, measured on the worst case for a cache (every request a
distinct key, so every call is a miss that walks the whole stack and
pays the store).

The baseline is a verbatim reconstruction of the deleted
``repro.exec.cache.CachingFetcher`` miss path (untraced, no retry
policy): key build, memo probe, miss counter, the ``_backend_fetch``
helper frame wrapping ``call_with_retry``, store. Both loops do
identical backend work; the difference is pure middleware plumbing.

A single ~20us fetch swings tens of percent under scheduler/GC noise,
and the machine drifts over a session — so the variants run in
*interleaved* rounds and each reports its best round (the minimum is
the run least polluted by the machine).

Writes ``BENCH_stack.json`` at the repo root with both wall times and
the overhead fraction, so the number is auditable from the working
tree (EXPERIMENTS.md quotes it).

Both loops must produce identical responses — a stack that changed
the measurement would be a bug, not overhead.
"""

from __future__ import annotations

import gc
import json
import time

from repro.analysis.study import Study
from repro.backends import FetchBackend
from repro.retry import RetryCounters, call_with_retry


#: Distinct URLs fetched per round: enough that per-call costs
#: dominate constants, small enough for many rounds per session.
SLICE = 4000

#: Interleaved timed rounds per variant; each reports its minimum.
ROUNDS = 9

#: The PR's acceptance bar on the recorded overhead.
MAX_OVERHEAD = 0.05


class _HandwrittenMemo:
    """The pre-refactor wrapper's hot path, reconstructed verbatim."""

    def __init__(self, fetcher) -> None:
        self._inner = fetcher
        self._retry_policy = None
        self._memo: dict = {}
        self.hits = 0
        self.misses = 0
        self.retry_counters = RetryCounters()

    def fetch(self, url, at):
        key = (str(url), at.days)
        result = self._memo.get(key)
        if result is None:
            self.misses += 1
            result = self._backend_fetch(url, at, key)
            self._memo[key] = result
        else:
            self.hits += 1
        return result

    def _backend_fetch(self, url, at, key):
        return call_with_retry(
            lambda: self._inner.fetch(url, at),
            self._retry_policy,
            key=f"fetch:{key[0]}@{key[1]}",
            counters=self.retry_counters,
        )


def test_stack_overhead(benchmark, world, bench_out):
    study = Study.from_world(world)
    urls = list(dict.fromkeys(record.url for record in study.records))[:SLICE]
    fetcher, at = study.fetcher, study.at
    # Warm the simulated web once so neither variant pays first-touch
    # site/page construction costs inside its timed loop.
    for url in urls:
        fetcher.fetch(url, at=at)

    # Response equality is checked once, untimed — retaining per-round
    # response lists inside the timed section would grow the heap and
    # bias the GC pauses against whichever variant runs later.
    hand_responses = [_HandwrittenMemo(fetcher).fetch(url, at) for url in urls]
    stack_responses = [FetchBackend(fetcher).fetch(url, at) for url in urls]

    def one_round(factory) -> float:
        # Fresh memo per round: every URL is distinct, so each call is
        # a miss — the worst case (full walk + store) for both variants.
        gc.collect()  # level the allocator field between variants
        call = factory(fetcher).fetch
        start = time.perf_counter()
        for url in urls:
            call(url, at)
        return time.perf_counter() - start

    def run() -> dict[str, float]:
        # Warmup both (first-construction and allocator effects), then
        # alternate so session-scale machine drift hits both equally.
        one_round(_HandwrittenMemo)
        one_round(FetchBackend)
        hand_rounds, stack_rounds = [], []
        for _ in range(ROUNDS):
            hand_rounds.append(one_round(_HandwrittenMemo))
            stack_rounds.append(one_round(FetchBackend))
        return {
            "handwritten": min(hand_rounds),
            "stacked": min(stack_rounds),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    hand_wall = results["handwritten"]
    stack_wall = results["stacked"]

    print()
    for name, wall in (("handwritten", hand_wall), ("stacked", stack_wall)):
        per_call_us = wall / max(len(urls), 1) * 1e6
        print(
            f"-- {name}, {len(urls)} distinct URLs, best of {ROUNDS}: "
            f"{wall:.4f}s ({per_call_us:.1f}us/fetch)"
        )

    assert stack_responses == hand_responses, (
        "the stack changed the measurement"
    )
    overhead = stack_wall / max(hand_wall, 1e-9) - 1.0
    payload = {
        "urls": len(urls),
        "rounds": ROUNDS,
        "handwritten_seconds": round(hand_wall, 4),
        "stacked_seconds": round(stack_wall, 4),
        "overhead_frac": round(overhead, 4),
    }
    out = bench_out("BENCH_stack.json")
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"overhead: {overhead:+.1%} -> {out.name}")
    assert overhead <= MAX_OVERHEAD, (
        f"stack overhead {overhead:.1%} exceeds {MAX_OVERHEAD:.0%}"
    )
