"""EXT-1 — recover archived copies via query-parameter reordering.

Section 5.2's implication (b): for never-archived URLs with many query
parameters, "it might be possible to find archived copies for some of
them by ... looking for archived URLs which are identical except that
they include the query parameters in a different order". The paper
proposes this but does not evaluate it; this benchmark does, over the
never-archived population of the generated world.
"""

from __future__ import annotations

from repro.analysis.query_variants import find_reordered_variants
from repro.dataset.planner import Disposition
from repro.reporting.tables import render_table


def test_ext_query_variant_recovery(benchmark, world, report):
    never_records = [r.record for r in report.spatial.records]

    def scan():
        return find_reordered_variants(never_records, world.cdx)

    variant_report = benchmark(scan)

    query_heavy = [r for r in report.spatial.records if r.query_param_count >= 3]
    print()
    print(
        render_table(
            headers=["quantity", "count"],
            rows=[
                ["never-archived links", variant_report.examined],
                ["  of which carry a query string", variant_report.with_query],
                ["  of which are query-heavy (3+ params)", len(query_heavy)],
                ["recovered via reordered archived variant", len(variant_report)],
            ],
            title="EXT-1: §5.2 implication (b), evaluated",
        )
    )
    for finding in variant_report.findings[:2]:
        print(f"  example: {finding.record.url}")
        print(f"        -> {finding.archived_variant}")

    # The implication holds: a nonzero share of "never archived" URLs
    # are archived after all, just under a different parameter order.
    assert len(variant_report) > 0
    assert len(variant_report) <= variant_report.with_query
    # Every recovery must point at the same resource (ground truth:
    # those links were QUERY_DEEP pages that really existed).
    for finding in variant_report.findings:
        truth = world.truth[finding.record.url]
        assert truth.disposition is Disposition.QUERY_DEEP
