"""ABL-2 — redirect-validation parameter sweep (design choice in §4.2).

The paper validates an archived redirection by comparing its target
with up to 6 sibling URLs' redirect targets within 90 days. This
ablation sweeps both knobs, showing how the validated-copy count
responds: tighter windows find fewer duplicated targets (more false
"valid"), wider windows and more siblings converge.
"""

from __future__ import annotations

from repro.analysis.redirects import RedirectValidator
from repro.reporting.tables import render_table

WINDOWS_DAYS = (30.0, 90.0, 365.0)
SIBLING_CAPS = (2, 6, 12)


def _validated_count(world, censuses, window: float, siblings: int) -> int:
    validator = RedirectValidator(
        world.cdx, window_days=window, max_siblings=siblings
    )
    count = 0
    for census in censuses:
        for snapshot in census.pre_marking_3xx[:4]:
            if validator.validate(snapshot).valid:
                count += 1
                break
    return count


def test_ablation_redirect_validation(benchmark, world, report):
    censuses = [
        c for c in report.censuses
        if not c.has_pre_marking_200 and c.has_pre_marking_3xx
    ]

    def sweep():
        return {
            (window, siblings): _validated_count(world, censuses, window, siblings)
            for window in WINDOWS_DAYS
            for siblings in SIBLING_CAPS
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        [f"{window:.0f}d", siblings, results[(window, siblings)]]
        for window in WINDOWS_DAYS
        for siblings in SIBLING_CAPS
    ]
    print()
    print(
        render_table(
            headers=["window", "max siblings", "links validated"],
            rows=rows,
            title=(
                "ABL-2: §4.2 validation knobs "
                f"(population: {len(censuses)} links with 3xx copies)"
            ),
        )
    )

    paper_setting = results[(90.0, 6)]
    assert paper_setting > 0
    # More sibling evidence can only kill candidates, never add them.
    for window in WINDOWS_DAYS:
        counts = [results[(window, s)] for s in SIBLING_CAPS]
        assert counts == sorted(counts, reverse=True)
    # A wider window sees more duplicated targets, so it validates no
    # more than a narrow one at equal sibling budget.
    for siblings in SIBLING_CAPS:
        assert results[(365.0, siblings)] <= results[(30.0, siblings)]
