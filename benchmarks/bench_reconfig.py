"""T-reconfig — delta wire savings, swap disciplines, rebalance pause.

Three arms over one forward-moving world:

**Delta-bytes sweep.** Generation zero is the full batch build. For
each event-batch size B the world takes B editorial touches (plus one
sampled-URL eviction, so every generation is a distinct snapshot), the
incremental engine rebuilds, and the publisher diffs the consecutive
generations into a content-addressed
:class:`~repro.service.reconfig.GenerationDelta`. At **every** batch
size the delta's wire bytes must undercut the full snapshot's
(:func:`~repro.service.reconfig.snapshot_wire_bytes`, same codec) —
shipping deltas would be pointless otherwise — and applying the delta
is re-verified byte-identical via the content hash.

**Swap-discipline sweep.** The delta schedule is replayed twice
through one node: atomic force-flush cutovers vs drained rolling
cutovers. Expected shape: p50/p99 and the shed set stay in family
(the discipline moves *when* replicas rebind, not what they answer),
atomic lag is exactly zero, and drain lag is positive but bounded by
the batcher's ``max_wait_ms``.

**Rebalance pause.** A 2×2 cluster migrates the hottest routing keys
to the other shard mid-replay through the same drain machinery. The
pause is the :class:`~repro.service.reconfig.ReconfigEvent` drain lag,
and the run's wire answers must be byte-identical to a cluster that
never rebalances at all.

Writes ``BENCH_reconfig.json`` (via the ``bench_out`` resolver, so the
smoke test can redirect it).
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.clock import SimTime
from repro.dataset.worldgen import WorldConfig, generate_world
from repro.live import (
    GenerationPublisher,
    IncrementalStudy,
    ReprobePolicy,
    WorldDriver,
)
from repro.service import (
    ClusterConfig,
    ClusterService,
    DeltaApply,
    LinkStatusService,
    RebalancePlan,
    ServerConfig,
    WorkloadConfig,
    generate_workload,
    rendezvous_owner,
    snapshot_wire_bytes,
)

LIVE_LINKS = int(os.environ.get("REPRO_BENCH_LIVE_LINKS", "2600"))
LIVE_SAMPLE = int(os.environ.get("REPRO_BENCH_LIVE_SAMPLE", "1000"))
LIVE_REQUESTS = int(os.environ.get("REPRO_BENCH_LIVE_REQUESTS", "8000"))
LIVE_SEED = 11

#: Editorial touches applied between consecutive builds.
BATCH_SIZES: tuple[int, ...] = (2, 8, 32)

_wire: dict = {}
_discipline: dict = {}
_rebalance: dict = {}


@pytest.fixture(scope="module")
def live_world():
    """A private mutable world — the driver edits it in place."""
    return generate_world(
        WorldConfig(
            n_links=LIVE_LINKS, target_sample=LIVE_SAMPLE, seed=LIVE_SEED
        )
    )


@pytest.fixture(scope="module")
def pipeline(live_world):
    """Engine, driver, and publisher shared by all arms (ordered)."""
    return {
        "inc": IncrementalStudy(
            live_world, sample_size=LIVE_SAMPLE, seed=LIVE_SEED,
            policy=ReprobePolicy(every_days=30.0),
        ),
        "driver": WorldDriver(live_world),
        "publisher": GenerationPublisher(retain=len(BATCH_SIZES) + 1),
    }


def _touch_sampled_urls(world, driver, urls, at_days, count) -> int:
    """Post ``count`` sampled URLs onto articles that lack them."""
    encyclopedia = world.encyclopedia
    titles = encyclopedia.titles()
    touched = 0
    candidates = iter(urls)
    step = 0.001
    while touched < count:
        url = next(candidates)
        title = titles[-1 - (touched % min(10, len(titles)))]
        already = {ref.url for ref in encyclopedia.article(title).link_refs()}
        if url in already:
            continue
        driver.add_link(title, url, SimTime(at_days + touched * step))
        touched += 1
    return touched


def test_delta_wire_savings(benchmark, bench_out, live_world, pipeline):
    inc, driver, publisher = (
        pipeline["inc"], pipeline["driver"], pipeline["publisher"],
    )
    base = live_world.study_time.days

    def full_build():
        return inc.build(live_world.study_time)

    gen0 = benchmark.pedantic(full_build, rounds=1, iterations=1)
    publisher.publish(gen0)
    sample_urls = [record.url for record in gen0.report.dataset.records]
    _wire.update(sample_size=gen0.sample_size, batches=[])

    url_cursor = 0
    evicted: set[str] = set()
    for step, batch in enumerate(BATCH_SIZES, start=1):
        at = SimTime(base + float(step))
        # A bot sweep per interval archives newly dead links, so the
        # delta carries measurement upserts, not just removals.
        driver.sweep(SimTime(at.days - 0.9))
        # One sampled-URL eviction per batch keeps every generation a
        # distinct snapshot (and exercises delta removals).
        gone = sample_urls[-step]
        evicted.add(gone)
        removals = 0
        for title in live_world.encyclopedia.titles():
            article = live_world.encyclopedia.article(title)
            while any(ref.url == gone for ref in article.link_refs()):
                driver.remove_link(
                    title, gone, SimTime(at.days - 0.8 + removals * 0.001)
                )
                removals += 1
                article = live_world.encyclopedia.article(title)
        _touch_sampled_urls(
            live_world, driver,
            [u for u in sample_urls[url_cursor:] if u not in evicted],
            at.days - 0.5, batch,
        )
        url_cursor += batch

        result = inc.build(at)
        generation = publisher.publish(result)
        previous = publisher.generations[-2]

        start = time.perf_counter()
        delta = publisher.build_delta(previous, generation)
        diff_ms = (time.perf_counter() - start) * 1000.0
        delta_bytes = delta.wire_bytes()
        snapshot_bytes = snapshot_wire_bytes(generation.index)

        # The tentpole contract at every batch size: the delta beats
        # the snapshot it replaces, and rebuilds it byte-identically
        # (build_delta already re-verified the content hash).
        assert delta_bytes < snapshot_bytes
        assert delta.to_version == generation.version

        digest = {
            "events": batch,
            "dirty": result.dirty.size,
            "upserts": len(delta.upserts),
            "removals": len(delta.removals),
            "delta_bytes": delta_bytes,
            "snapshot_bytes": snapshot_bytes,
            "savings_ratio": round(1.0 - delta_bytes / snapshot_bytes, 4),
            "diff_ms": round(diff_ms, 2),
        }
        _wire["batches"].append(digest)
        print(
            f"batch={batch}: {len(delta.upserts)} upserts "
            f"+ {len(delta.removals)} removals = {delta_bytes}B vs "
            f"{snapshot_bytes}B snapshot "
            f"({100 * digest['savings_ratio']:.1f}% saved)"
        )


def _delta_schedule(publisher, requests, drain):
    generations = publisher.generations
    horizon = max(r.arrival_ms for r in requests)
    swaps = []
    for i, generation in enumerate(generations[1:]):
        swaps.append(DeltaApply(
            at_ms=horizon * (i + 1) / len(generations),
            drain=drain,
            delta=publisher.build_delta(generations[i], generation),
        ))
    return swaps


def test_rolling_vs_atomic_swap(benchmark, bench_out, pipeline):
    publisher = pipeline["publisher"]
    generations = publisher.generations
    assert len(generations) >= 3, "delta sweep must run first"
    g0 = generations[0]
    requests = generate_workload(
        [entry.url for entry in g0.index.entries],
        WorkloadConfig(
            n_requests=LIVE_REQUESTS, offered_rps=2_000.0, seed=3,
            aggregate_fraction=0.02, unknown_fraction=0.01,
        ),
    )

    def run(drain):
        service = LinkStatusService(g0.index)
        schedule = _delta_schedule(publisher, requests, drain)
        start = time.perf_counter()
        result = service.serve(requests, mode="serial", swaps=schedule)
        return result, (time.perf_counter() - start) * 1000.0

    atomic, atomic_ms = run(False)
    (rolling, rolling_ms) = benchmark.pedantic(
        run, args=(True,), rounds=1, iterations=1
    )

    # Both disciplines install the whole lineage and shed identically;
    # atomic applies instantaneously on the virtual clock, drains pay
    # a bounded, recorded lag.
    versions = tuple(g.version for g in generations)
    assert atomic.index_versions == versions
    assert rolling.index_versions == versions
    assert len(atomic.shed_ids) == len(rolling.shed_ids)
    assert all(e.lag_ms == 0.0 for e in atomic.reconfig_events)
    assert all(e.lag_ms >= 0.0 for e in rolling.reconfig_events)
    max_wait = ServerConfig().max_wait_ms
    assert all(e.lag_ms <= max_wait for e in rolling.reconfig_events)

    def digest(result, wall_ms):
        return {
            "p50_ms": result.as_dict()["p50_ms"],
            "p99_ms": result.as_dict()["p99_ms"],
            "shed": len(result.shed_ids),
            "wall_ms": round(wall_ms, 2),
            "reconfig_lag_ms": [
                round(e.lag_ms, 4) for e in result.reconfig_events
            ],
            "drained_batches": sum(
                e.drained_batches for e in result.reconfig_events
            ),
        }

    _discipline.update(
        n_requests=len(requests),
        n_swaps=len(generations) - 1,
        atomic=digest(atomic, atomic_ms),
        rolling=digest(rolling, rolling_ms),
        p99_delta_ms=round(
            rolling.latency_quantile(0.99) - atomic.latency_quantile(0.99),
            6,
        ),
    )
    print(
        f"atomic p99 {_discipline['atomic']['p99_ms']}ms vs rolling "
        f"p99 {_discipline['rolling']['p99_ms']}ms; rolling lags "
        f"{_discipline['rolling']['reconfig_lag_ms']}ms"
    )


def test_rebalance_pause(benchmark, bench_out, pipeline):
    publisher = pipeline["publisher"]
    g0 = publisher.generations[0]
    requests = generate_workload(
        [entry.url for entry in g0.index.entries],
        WorkloadConfig(
            n_requests=LIVE_REQUESTS, offered_rps=2_000.0, seed=3,
            aggregate_fraction=0.02, unknown_fraction=0.01,
        ),
    )
    horizon = max(r.arrival_ms for r in requests)

    def make_cluster():
        return ClusterService(
            g0.index, ServerConfig(),
            ClusterConfig(n_shards=2, replicas_per_shard=2),
        )

    # Move the three busiest domains off the shard that owns them.
    sizes: dict[str, int] = {}
    for entry in g0.index.entries:
        sizes[entry.domain] = sizes.get(entry.domain, 0) + 1
    hot = sorted(sizes, key=lambda d: (-sizes[d], d))[:3]
    probe = make_cluster()
    moves = tuple(
        (key, next(
            s for s in probe.shard_ids
            if s != rendezvous_owner(key, probe.shard_ids)
        ))
        for key in hot
    )
    plan = RebalancePlan(at_ms=0.5 * horizon, moves=moves)

    def run(swaps):
        service = make_cluster()
        start = time.perf_counter()
        result = service.serve(requests, mode="serial", swaps=swaps)
        return result, (time.perf_counter() - start) * 1000.0

    baseline, baseline_ms = run(None)
    (moved, moved_ms) = benchmark.pedantic(
        run, args=([plan],), rounds=1, iterations=1
    )

    # Ownership migration is invisible at the wire: byte-identical to
    # the cluster that never rebalanced.
    assert [r.to_wire() for r in baseline.responses] == [
        r.to_wire() for r in moved.responses
    ]
    (event,) = moved.reconfig_events
    assert event.kind == "rebalance"
    assert event.moved_keys == len(moves)
    assert event.from_version == event.to_version == g0.version
    max_wait = ServerConfig().max_wait_ms
    assert 0.0 <= event.lag_ms <= max_wait

    _rebalance.update(
        n_requests=len(requests),
        moved_keys=event.moved_keys,
        pause_ms=round(event.lag_ms, 4),
        drained_batches=event.drained_batches,
        p99_ms={
            "baseline": baseline.as_dict()["p99_ms"],
            "rebalanced": moved.as_dict()["p99_ms"],
        },
        wall_ms={"baseline": round(baseline_ms, 2),
                 "rebalanced": round(moved_ms, 2)},
    )
    print(
        f"rebalanced {event.moved_keys} keys, pause {event.lag_ms:.3f}ms "
        f"({event.drained_batches} drained batches)"
    )

    payload = {
        "world": {
            "n_links": LIVE_LINKS,
            "sample": LIVE_SAMPLE,
            "seed": LIVE_SEED,
        },
        "delta_wire": _wire,
        "swap_discipline": _discipline,
        "rebalance": _rebalance,
    }
    out = bench_out("BENCH_reconfig.json")
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out.name} ({len(_wire['batches'])} batch sizes)")
