"""FIG6 / T5-2 — coverage gaps around never-archived links (paper §5.2).

Regenerates Figure 6's CDFs (how many successfully archived URLs share
a never-archived link's directory / hostname) and the counts: 749 of
1,982 have no directory-level coverage, 256 no hostname-level
coverage, and 219 are typos betrayed by a unique archived URL at edit
distance 1. Note DESIGN.md's scale caveat: our hosts carry hundreds of
archived URLs, not the paper's millions, so the x-range shrinks while
the shape holds.
"""

from __future__ import annotations

from repro.analysis.spatial import spatial_analysis
from repro.analysis.typos import find_typos
from repro.reporting.cdf import ecdf
from repro.reporting.figures import render_cdf
from repro.reporting.summary import ComparisonTable


def test_fig6_coverage_gaps(benchmark, world, report):
    never_records = [r.record for r in report.spatial.records]

    def analyse():
        return spatial_analysis(never_records[:300], world.cdx)

    benchmark(analyse)

    spatial = report.spatial
    directory_curve = ecdf([max(c, 0.5) for c in spatial.directory_counts])
    hostname_curve = ecdf([max(c, 0.5) for c in spatial.hostname_counts])

    print()
    print(
        render_cdf(
            {"directory": directory_curve, "hostname": hostname_curve},
            title=(
                "Figure 6: successfully archived URLs near never-archived "
                f"links (n={len(spatial.records)}; paper n=1,982)"
            ),
            x_label="neighbors",
            log_x=True,
        )
    )

    never = max(len(spatial.records), 1)
    table = ComparisonTable(title="§5.2 spatial analysis")
    table.add(
        "no directory-level coverage (% of never-archived)",
        paper=37.8,  # 749 / 1,982
        measured=100.0 * len(spatial.directory_gaps) / never,
        tolerance=0.5,
    )
    table.add(
        "no hostname-level coverage (% of never-archived)",
        paper=12.9,  # 256 / 1,982
        measured=100.0 * len(spatial.hostname_gaps) / never,
        tolerance=0.8,
    )
    print(table.render())

    # Directional claims: gaps are mostly page-specific, and hostname
    # coverage dominates directory coverage.
    assert len(spatial.hostname_gaps) < len(spatial.directory_gaps)
    assert len(spatial.directory_gaps) < never
    assert table.all_within_band, table.failures()


def test_sec5_2_typo_detection(benchmark, world, report):
    never_records = [r.record for r in report.spatial.records]

    def scan():
        return find_typos(never_records[:200], world.cdx)

    benchmark(scan)

    typos = report.typos
    never = max(typos.examined, 1)
    table = ComparisonTable(title="§5.2 typo detection")
    table.add(
        "typos among never-archived (%)",
        paper=11.0,  # 219 / 1,982
        measured=100.0 * len(typos) / never,
        tolerance=0.7,
    )
    print()
    print(table.render())
    print(f"  (raw: {len(typos)} of {never}; paper: 219 of 1,982)")
    for finding in typos.findings[:3]:
        print(f"  example: {finding.record.url}")
        print(f"        -> {finding.corrected_url}")

    assert len(typos) > 0
    # Verify against ground truth: the findings really are typos.
    from repro.dataset.planner import Disposition

    for finding in typos.findings:
        assert (
            world.truth[finding.record.url].disposition is Disposition.TYPO
        )
    assert table.all_within_band, table.failures()
