"""EXT-2 — link survival estimation (extension of §2.4/§5.1).

The paper reports that "many links become dysfunctional even a few
years after they are posted" from the posting-date distribution alone.
With the reproduction's full population we can do better: estimate a
right-censored Kaplan-Meier survival curve over every wiki link (using
first-failure times a monitoring bot would log), and compare the
marked population's posting-to-marking delays against it.
"""

from __future__ import annotations

from repro.analysis.lifetimes import (
    kaplan_meier,
    median_survival,
    survival_at,
    time_to_marking,
)
from repro.reporting.cdf import ecdf
from repro.reporting.figures import render_cdf
from repro.reporting.tables import render_table


def test_ext_link_survival(benchmark, world, report):
    # Build the monitoring-log cohort: every wiki link, with death
    # (first-failure) observed or censored at the study horizon. The
    # generator's dead_from stands in for a bot's first-failure log —
    # an observable a continuously-running checker would have.
    horizon = world.study_time
    durations: list[float] = []
    observed: list[bool] = []
    for truth in world.truth.values():
        if truth.dead_from is not None and truth.dead_from < horizon:
            durations.append(max(truth.dead_from.days - truth.posted_at.days, 0.0))
            observed.append(True)
        else:
            durations.append(max(horizon.days - truth.posted_at.days, 0.0))
            observed.append(False)

    def estimate():
        return kaplan_meier(durations, observed)

    curve = benchmark(estimate)

    marking_delays = time_to_marking(report.dataset.records)
    print()
    rows = []
    for years in (1, 2, 5, 10):
        rows.append(
            [
                f"{years}y",
                100.0 * survival_at(curve, 365.2425 * years),
            ]
        )
    print(
        render_table(
            headers=["horizon", "links still working (%)"],
            rows=rows,
            title=f"EXT-2: Kaplan-Meier link survival (n={len(durations)})",
        )
    )
    median = median_survival(curve)
    print(f"  median lifetime: {median / 365.2425:.1f} years"
          if median else "  median lifetime: not reached")
    print()
    print(
        render_cdf(
            {"posted-to-marked": ecdf([max(d, 0.5) for d in marking_delays])},
            title="posting-to-marking delay over the dead dataset (days)",
            x_label="days",
            log_x=True,
        )
    )

    # Shape claims: substantial decay within a few years, a durable
    # surviving fraction, and marking always lagging death.
    assert survival_at(curve, 365.2425) > survival_at(curve, 365.2425 * 5)
    # The durable fraction: ~26% of links never break, but the KM tail
    # is estimated from the small long-followup cohort, so allow slack.
    assert survival_at(curve, 365.2425 * 20) > 0.10
    marked_median = sorted(marking_delays)[len(marking_delays) // 2]
    assert median is None or marked_median > median * 0.5
