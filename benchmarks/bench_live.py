"""T-live — incremental rebuild cost and zero-downtime swap latency.

Two arms over one forward-moving world:

**Delta-rebuild sweep.** Generation zero is the full batch build (the
from-scratch baseline at this scale). Then, for each event-batch size
B, the world is driven with B editorial touches against sampled URLs
and the incremental engine rebuilds; a from-scratch
:func:`~repro.live.reference_study` runs at the same instant for the
wall-cost comparison, and the two index ``version`` hashes must match
(the golden contract holds at every scale, including this one).
Expected shape: incremental wall cost scales with the dirty set, not
the sample — speedup falls as B grows but stays well above 1 while
B ≪ sample.

**Swap-latency sweep.** The published generations are installed into
a serving run via the ``swaps=`` schedule and the same workload is
replayed with and without swaps. Expected shape: swaps move which
generation answers (both versions appear on the wire, the schedule's
order is the served order) while p50/p99 and the shed set stay in
family — a generation swap is not a service degradation.

Writes ``BENCH_live.json`` (via the ``bench_out`` resolver, so the
smoke test can redirect it).
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.clock import SimTime
from repro.dataset.worldgen import WorldConfig, generate_world
from repro.live import (
    GenerationPublisher,
    IncrementalStudy,
    ReprobePolicy,
    WorldDriver,
    reference_study,
)
from repro.service import (
    LinkStatusIndex,
    LinkStatusService,
    WorkloadConfig,
    generate_workload,
)

LIVE_LINKS = int(os.environ.get("REPRO_BENCH_LIVE_LINKS", "2600"))
LIVE_SAMPLE = int(os.environ.get("REPRO_BENCH_LIVE_SAMPLE", "1000"))
LIVE_REQUESTS = int(os.environ.get("REPRO_BENCH_LIVE_REQUESTS", "8000"))
LIVE_SEED = 11

#: Editorial touches applied between consecutive builds.
BATCH_SIZES: tuple[int, ...] = (2, 8, 32)

_delta: dict = {}
_swap: dict = {}


@pytest.fixture(scope="module")
def live_world():
    """A private mutable world — the driver edits it in place."""
    return generate_world(
        WorldConfig(
            n_links=LIVE_LINKS, target_sample=LIVE_SAMPLE, seed=LIVE_SEED
        )
    )


@pytest.fixture(scope="module")
def pipeline(live_world):
    """Engine, driver, and publisher shared by both arms (ordered)."""
    return {
        "inc": IncrementalStudy(
            live_world, sample_size=LIVE_SAMPLE, seed=LIVE_SEED,
            policy=ReprobePolicy(every_days=30.0),
        ),
        "driver": WorldDriver(live_world),
        "publisher": GenerationPublisher(retain=len(BATCH_SIZES) + 1),
    }


def _touch_sampled_urls(world, driver, urls, at_days, count) -> int:
    """Post ``count`` sampled URLs onto articles that lack them.

    Each edit emits one :class:`LinkPostedEvent` (the (title, url)
    pair is checked to be new), so the batch lands exactly ``count``
    lifecycle events on sampled URLs.
    """
    encyclopedia = world.encyclopedia
    titles = encyclopedia.titles()
    touched = 0
    candidates = iter(urls)
    step = 0.001
    while touched < count:
        url = next(candidates)
        title = titles[-1 - (touched % min(10, len(titles)))]
        already = {ref.url for ref in encyclopedia.article(title).link_refs()}
        if url in already:
            continue
        driver.add_link(title, url, SimTime(at_days + touched * step))
        touched += 1
    return touched


def test_delta_rebuild_speedup(benchmark, bench_out, live_world, pipeline):
    inc, driver, publisher = (
        pipeline["inc"], pipeline["driver"], pipeline["publisher"],
    )
    base = live_world.study_time.days

    def full_build():
        start = time.perf_counter()
        result = inc.build(live_world.study_time)
        return result, (time.perf_counter() - start) * 1000.0

    (gen0, full_ms) = benchmark.pedantic(full_build, rounds=1, iterations=1)
    publisher.publish(gen0)
    sample_urls = [record.url for record in gen0.report.dataset.records]
    _delta.update(
        full_build_ms=round(full_ms, 2),
        sample_size=gen0.sample_size,
        batches=[],
    )

    url_cursor = 0
    evicted: set[str] = set()
    for step, batch in enumerate(BATCH_SIZES, start=1):
        at = SimTime(base + float(step))
        # One editorial eviction per batch: removing every reference
        # to a *sampled* URL changes the published content, so each
        # generation gets a distinct version (otherwise the swap arm
        # would swap between identical snapshots).
        gone = sample_urls[-step]
        evicted.add(gone)
        removals = 0
        for title in live_world.encyclopedia.titles():
            article = live_world.encyclopedia.article(title)
            while any(ref.url == gone for ref in article.link_refs()):
                driver.remove_link(
                    title, gone, SimTime(at.days - 0.8 + removals * 0.001)
                )
                removals += 1
                article = live_world.encyclopedia.article(title)
        _touch_sampled_urls(
            live_world, driver,
            [u for u in sample_urls[url_cursor:] if u not in evicted],
            at.days - 0.5, batch,
        )
        url_cursor += batch

        start = time.perf_counter()
        result = inc.build(at)
        incremental_ms = (time.perf_counter() - start) * 1000.0
        publish_start = time.perf_counter()
        generation = publisher.publish(result)
        publish_ms = (time.perf_counter() - publish_start) * 1000.0

        start = time.perf_counter()
        reference = reference_study(
            live_world, at, sample_size=LIVE_SAMPLE, seed=LIVE_SEED,
            policy=ReprobePolicy(every_days=30.0),
        ).run()
        scratch_ms = (time.perf_counter() - start) * 1000.0

        # The golden contract, re-checked at benchmark scale.
        assert generation.version == LinkStatusIndex.build(reference).version
        assert result.dirty.size >= batch

        digest = {
            "events": batch,
            "dirty": result.dirty.size,
            "incremental_ms": round(incremental_ms, 2),
            "from_scratch_ms": round(scratch_ms, 2),
            "publish_ms": round(publish_ms, 2),
            "speedup": round(scratch_ms / incremental_ms, 2)
            if incremental_ms > 0
            else None,
        }
        _delta["batches"].append(digest)
        print(
            f"batch={batch}: dirty={digest['dirty']}, "
            f"incremental {digest['incremental_ms']}ms vs scratch "
            f"{digest['from_scratch_ms']}ms ({digest['speedup']}x)"
        )

    # Every delta build must beat the full rebuild it replaces.
    for digest in _delta["batches"]:
        assert digest["incremental_ms"] < _delta["full_build_ms"] or (
            digest["dirty"] >= _delta["sample_size"]
        )


def test_generation_swap_latency(benchmark, bench_out, pipeline):
    publisher = pipeline["publisher"]
    generations = publisher.generations
    assert len(generations) >= 3, "delta sweep must run first"
    g0 = generations[0]
    requests = generate_workload(
        [entry.url for entry in g0.index.entries],
        WorkloadConfig(
            n_requests=LIVE_REQUESTS, offered_rps=2_000.0, seed=3,
            aggregate_fraction=0.02, unknown_fraction=0.01,
        ),
    )
    horizon = max(r.arrival_ms for r in requests)
    swaps = [
        (horizon * (i + 1) / len(generations), generation.index)
        for i, generation in enumerate(generations[1:])
    ]

    def run(schedule):
        service = LinkStatusService(g0.index)
        start = time.perf_counter()
        result = service.serve(requests, mode="serial", swaps=schedule)
        return result, (time.perf_counter() - start) * 1000.0

    baseline, baseline_ms = run(None)
    (swapped, swapped_ms) = benchmark.pedantic(
        run, args=(list(swaps),), rounds=1, iterations=1
    )

    served_by_generation: dict[str, int] = {}
    for response in swapped.responses:
        served_by_generation[response.index_version] = (
            served_by_generation.get(response.index_version, 0) + 1
        )
    assert swapped.index_versions == tuple(
        g.version for g in generations
    )
    # Each batch's removal changed the content, so the generations are
    # genuinely distinct snapshots and several of them answered.
    assert len(set(swapped.index_versions)) == len(generations)
    assert len(served_by_generation) >= 2
    # Swaps relocate answers across generations without shedding more.
    assert len(swapped.shed_ids) == len(baseline.shed_ids)

    _swap.update(
        n_requests=len(requests),
        n_swaps=len(swaps),
        baseline=baseline.as_dict(),
        swapped=swapped.as_dict(),
        served_by_generation=served_by_generation,
        wall_ms={"baseline": round(baseline_ms, 2),
                 "swapped": round(swapped_ms, 2)},
        p99_delta_ms=round(
            swapped.latency_quantile(0.99) - baseline.latency_quantile(0.99),
            6,
        ),
    )
    print(
        f"swaps={len(swaps)}: p99 {baseline.as_dict()['p99_ms']}ms -> "
        f"{swapped.as_dict()['p99_ms']}ms, served by generation "
        f"{served_by_generation}"
    )

    payload = {
        "world": {
            "n_links": LIVE_LINKS,
            "sample": LIVE_SAMPLE,
            "seed": LIVE_SEED,
        },
        "delta_rebuild": _delta,
        "swap": _swap,
    }
    out = bench_out("BENCH_live.json")
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out.name} ({len(_delta['batches'])} batch sizes)")
