"""FIG3a/b/c — dataset characterisation (paper Figure 3).

Regenerates the three CDFs of §2.4 for both the study dataset and the
random-sample control: URLs per domain, site ranking, and posting
date. The paper's claims: (a) is heavy-tailed with >70% of domains
contributing one URL; (b) spans the whole ranking range; (c) has 40%
of links posted after 2015 and 20% after 2017; and all three curves
are "largely identical" between the two samples.
"""

from __future__ import annotations

from repro.reporting.cdf import ecdf
from repro.reporting.figures import render_cdf
from repro.reporting.summary import ComparisonTable


def test_fig3a_urls_per_domain(benchmark, report, random_sample_dataset):
    dataset = report.dataset

    def compute():
        return ecdf(list(dataset.domains().values()))

    curve = benchmark(compute)
    control = ecdf(list(random_sample_dataset.domains().values()))

    print()
    print(
        render_cdf(
            {"our dataset": curve, "random sample": control},
            title="Figure 3(a): number of URLs per domain (CDF across domains)",
            x_label="urls/domain",
            log_x=True,
        )
    )
    table = ComparisonTable(title="Figure 3(a) shape")
    table.add(
        "domains contributing one URL (%)",
        paper=70.0,
        measured=100.0 * curve.at(1),
        tolerance=0.25,
    )
    print(table.render())
    assert table.all_within_band
    assert curve.ks_distance(control) < 0.1  # representativeness


def test_fig3b_site_ranking(benchmark, report, random_sample_dataset):
    dataset = report.dataset

    def compute():
        return ecdf(dataset.rankings())

    curve = benchmark(compute)
    control = ecdf(random_sample_dataset.rankings())

    print()
    print(
        render_cdf(
            {"our dataset": curve, "random sample": control},
            title="Figure 3(b): site ranking (CDF across URLs)",
            x_label="ranking",
        )
    )
    # Claim: URLs spread across the whole 1..1M range, not clustered.
    assert curve.at(100_000) > 0.05
    assert curve.at(900_000) < 0.999
    assert curve.ks_distance(control) < 0.1


def test_fig3c_posting_dates(benchmark, report, random_sample_dataset):
    dataset = report.dataset

    def compute():
        return ecdf(dataset.posting_years())

    curve = benchmark(compute)
    control = ecdf(random_sample_dataset.posting_years())

    print()
    print(
        render_cdf(
            {"our dataset": curve, "random sample": control},
            title="Figure 3(c): date link posted (CDF across URLs)",
            x_label="year",
        )
    )
    table = ComparisonTable(title="Figure 3(c) shape")
    table.add(
        "posted after 2015 (%)",
        paper=40.0,
        measured=100.0 * (1.0 - curve.at(2016.0)),
        tolerance=0.4,
    )
    table.add(
        "posted after 2017 (%)",
        paper=20.0,
        measured=100.0 * (1.0 - curve.at(2018.0)),
        tolerance=0.5,
    )
    print(table.render())
    assert table.all_within_band
    assert curve.ks_distance(control) < 0.12
