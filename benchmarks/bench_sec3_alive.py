"""T3-1 / T3-2 — are permanently dead links indeed dead? (paper §3).

Regenerates the §3 numbers: ~16% of links return 200 but only ~3% are
genuinely functional after soft-404 screening; 79% of the functional
ones redirect before answering 200 (moved pages whose site added a
redirect after the marking); and IABot's single-GET deadness check is
vindicated — for ~95% of links with a post-marking snapshot, the first
such snapshot is erroneous.
"""

from __future__ import annotations

from repro.analysis.soft404 import Soft404Detector
from repro.reporting.summary import ComparisonTable
from repro.rng import RngRegistry


def test_sec3_functional_links(benchmark, world, report, paper_scale):
    # Benchmark the soft-404 detector itself on a slice of the 200s.
    two_hundreds = [p for p in report.probes if p.returned_200][:100]
    detector = Soft404Detector(
        world.fetcher(), RngRegistry(7).stream("bench.soft404")
    )

    def run_detector():
        return [
            detector.check(probe.record.url, world.study_time)
            for probe in two_hundreds
        ]

    benchmark(run_detector)

    n = report.sample_size
    table = ComparisonTable(title="§3: permanently dead links on the live web")
    table.add(
        "final status 200 (% of sample)",
        paper=16.5,
        measured=100.0 * report.frac_final_200,
        tolerance=0.6,
    )
    table.add(
        "genuinely functional (% of sample)",
        paper=3.05,
        measured=100.0 * report.frac_genuinely_alive,
        tolerance=0.8,
    )
    table.add(
        "functional links that redirect first (%)",
        paper=79.0,
        measured=100.0 * report.frac_alive_via_redirect,
        tolerance=0.45,
    )
    table.add(
        "first post-marking copy erroneous (%)",
        paper=95.0,
        measured=100.0 * report.frac_first_post_marking_erroneous,
        tolerance=0.15,
    )
    print()
    print(table.render())
    print(
        f"  (raw: {report.n_final_200} links returned 200; "
        f"{report.n_genuinely_alive} survived soft-404 screening; "
        f"{report.n_first_post_marking_erroneous}/"
        f"{report.n_with_post_marking_copy} first post-marking copies "
        "erroneous)"
    )

    if not paper_scale:
        return
    # Directional claims that define the section.
    assert report.n_final_200 > report.n_genuinely_alive * 2
    assert report.frac_genuinely_alive > 0.005
    assert report.frac_first_post_marking_erroneous > 0.85
    assert table.all_within_band, table.failures()
