"""ABL-1 — availability-lookup timeout sweep (design choice behind §4.1).

IABot treats a slow Wayback Availability API answer as "never
archived". This ablation replays the availability lookup for every
sampled link (restricted to copies that existed before its marking)
under different timeout budgets, quantifying the efficiency/coverage
trade-off the paper says is "worth revisiting".
"""

from __future__ import annotations

import pytest

from repro.archive.availability import AvailabilityApi, AvailabilityPolicy
from repro.errors import ArchiveTimeout
from repro.reporting.tables import render_table

TIMEOUTS_MS: tuple[float | None, ...] = (500.0, 2000.0, 5000.0, 20000.0, None)


def _copies_found(world, records, timeout_ms: float | None) -> int:
    api = AvailabilityApi(
        world.store,
        AvailabilityPolicy(
            base_ms=world.config.availability_base_ms,
            tail_scale_ms=world.config.availability_tail_ms,
            seed=f"ablation:{timeout_ms}",
        ),
    )
    found = 0
    for record in records:
        try:
            result = api.lookup(
                record.url,
                around=record.posted_at,
                timeout_ms=timeout_ms,
                before=record.marked_at,
            )
        except ArchiveTimeout:
            continue
        if result.snapshot is not None:
            found += 1
    return found


def test_ablation_availability_timeout(benchmark, world, report):
    records = report.dataset.records

    def sweep():
        return {
            timeout: _copies_found(world, records, timeout)
            for timeout in TIMEOUTS_MS
        }

    found = benchmark.pedantic(sweep, rounds=1, iterations=1)

    patient = found[None]
    rows = []
    for timeout in TIMEOUTS_MS:
        label = "none (patient)" if timeout is None else f"{timeout:.0f} ms"
        recovered = found[timeout]
        rows.append(
            [
                label,
                recovered,
                100.0 * recovered / max(len(records), 1),
                100.0 * recovered / max(patient, 1),
            ]
        )
    print()
    print(
        render_table(
            headers=["timeout", "copies found", "% of sample", "% of patient"],
            rows=rows,
            title="ABL-1: availability timeout vs usable copies found",
        )
    )

    # Monotonicity: longer budgets can only find more.
    counts = [found[t] for t in TIMEOUTS_MS]
    assert counts == sorted(counts)
    # The paper's effect: a bounded lookup leaves usable copies on the
    # table.
    assert found[5000.0] < patient
    assert patient > 0
    # A patient replay recovers exactly the §4.1 population: the links
    # whose pre-marking 200 copies IABot's bounded lookups hid. (The
    # marked dataset is selection-biased — a link with copies is only
    # in it *because* the lookup timed out — so the in-world fraction
    # equals the patient replay, not the fresh-draw timeout gap.)
    assert patient / max(len(records), 1) == pytest.approx(
        report.frac_pre_marking_200, abs=0.03
    )
    # The fresh-draw gap instead tracks the unconditional timeout rate.
    expected_gap = patient * AvailabilityPolicy(
        base_ms=world.config.availability_base_ms,
        tail_scale_ms=world.config.availability_tail_ms,
    ).timeout_probability(5000.0)
    assert patient - found[5000.0] == pytest.approx(expected_gap, rel=0.6)
