"""ABL-1 — availability-lookup timeout sweep (design choice behind §4.1).

IABot treats a slow Wayback Availability API answer as "never
archived". This ablation replays the availability lookup for every
sampled link (restricted to copies that existed before its marking)
under different timeout budgets, quantifying the efficiency/coverage
trade-off the paper says is "worth revisiting".

ABL-1b extends the sweep along the *fault* axis: the same replay under
increasing transient-fault rates (availability 5xx bursts + latency
spikes), with and without retry/backoff — quantifying how much of the
paper's "never archived" verdict a retrying bot would claw back under
degraded infrastructure.
"""

from __future__ import annotations

import pytest

from repro.archive.availability import AvailabilityApi, AvailabilityPolicy
from repro.errors import ArchiveTimeout, ArchiveUnavailable
from repro.faults import FaultPlan, FaultSpec, FaultyAvailabilityApi
from repro.retry import (
    DEFAULT_MASKING_POLICY,
    RetryCounters,
    call_with_retry,
    is_transient,
)
from repro.reporting.tables import render_table

TIMEOUTS_MS: tuple[float | None, ...] = (500.0, 2000.0, 5000.0, 20000.0, None)

#: ABL-1b fault-rate ladder (0.0 = the clean baseline column).
FAULT_RATES: tuple[float, ...] = (0.0, 0.1, 0.25, 0.5)

#: The bot's production timeout, fixed while the fault axis sweeps.
SWEEP_TIMEOUT_MS = 5_000.0


def _copies_found(world, records, timeout_ms: float | None) -> int:
    api = AvailabilityApi(
        world.store,
        AvailabilityPolicy(
            base_ms=world.config.availability_base_ms,
            tail_scale_ms=world.config.availability_tail_ms,
            seed=f"ablation:{timeout_ms}",
        ),
    )
    found = 0
    for record in records:
        try:
            result = api.lookup(
                record.url,
                around=record.posted_at,
                timeout_ms=timeout_ms,
                before=record.marked_at,
            )
        except ArchiveTimeout:
            continue
        if result.snapshot is not None:
            found += 1
    return found


def test_ablation_availability_timeout(benchmark, world, report, paper_scale):
    records = report.dataset.records

    def sweep():
        return {
            timeout: _copies_found(world, records, timeout)
            for timeout in TIMEOUTS_MS
        }

    found = benchmark.pedantic(sweep, rounds=1, iterations=1)

    patient = found[None]
    rows = []
    for timeout in TIMEOUTS_MS:
        label = "none (patient)" if timeout is None else f"{timeout:.0f} ms"
        recovered = found[timeout]
        rows.append(
            [
                label,
                recovered,
                100.0 * recovered / max(len(records), 1),
                100.0 * recovered / max(patient, 1),
            ]
        )
    print()
    print(
        render_table(
            headers=["timeout", "copies found", "% of sample", "% of patient"],
            rows=rows,
            title="ABL-1: availability timeout vs usable copies found",
        )
    )

    # Monotonicity: longer budgets can only find more.
    counts = [found[t] for t in TIMEOUTS_MS]
    assert counts == sorted(counts)
    if not paper_scale:
        return
    # The paper's effect: a bounded lookup leaves usable copies on the
    # table.
    assert found[5000.0] < patient
    assert patient > 0
    # A patient replay recovers exactly the §4.1 population: the links
    # whose pre-marking 200 copies IABot's bounded lookups hid. (The
    # marked dataset is selection-biased — a link with copies is only
    # in it *because* the lookup timed out — so the in-world fraction
    # equals the patient replay, not the fresh-draw timeout gap.)
    assert patient / max(len(records), 1) == pytest.approx(
        report.frac_pre_marking_200, abs=0.03
    )
    # The fresh-draw gap instead tracks the unconditional timeout rate.
    expected_gap = patient * AvailabilityPolicy(
        base_ms=world.config.availability_base_ms,
        tail_scale_ms=world.config.availability_tail_ms,
    ).timeout_probability(5000.0)
    assert patient - found[5000.0] == pytest.approx(expected_gap, rel=0.6)


# -- ABL-1b: fault-rate sweep ------------------------------------------------------


def _retryable(exc: BaseException) -> bool:
    return isinstance(exc, ArchiveTimeout) or is_transient(exc)


def _copies_found_under_faults(world, records, rate, retry_policy):
    """One sweep cell: bounded lookups at one fault rate and posture.

    A fresh API + injector per cell keeps latency draws and fault
    decisions identical across cells (both are pure per (url, attempt)
    / per key), so columns differ only in the knob under test.
    """
    api = AvailabilityApi(
        world.store,
        AvailabilityPolicy(
            base_ms=world.config.availability_base_ms,
            tail_scale_ms=world.config.availability_tail_ms,
            seed="ablation-faults",
        ),
    )
    if rate > 0.0:
        plan = FaultPlan(
            seed=17,
            availability_error=FaultSpec(rate=rate, max_repeats=2),
            availability_spike=FaultSpec(rate=rate, max_repeats=2),
        )
        api = FaultyAvailabilityApi(api, plan)
    counters = RetryCounters()
    found = 0
    for record in records:
        try:
            result = call_with_retry(
                lambda: api.lookup(
                    record.url,
                    around=record.posted_at,
                    timeout_ms=SWEEP_TIMEOUT_MS,
                    before=record.marked_at,
                ),
                retry_policy,
                key=f"availability:{record.url}",
                counters=counters,
                retryable=_retryable,
            )
        except (ArchiveTimeout, ArchiveUnavailable):
            continue
        if result.snapshot is not None:
            found += 1
    return found, counters


def test_ablation_fault_rate_sweep(benchmark, world, report, paper_scale):
    records = report.dataset.records

    def sweep():
        cells = {}
        for rate in FAULT_RATES:
            cells[rate, "off"] = _copies_found_under_faults(
                world, records, rate, None
            )
            cells[rate, "on"] = _copies_found_under_faults(
                world, records, rate, DEFAULT_MASKING_POLICY
            )
        return cells

    cells = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for rate in FAULT_RATES:
        bare, _ = cells[rate, "off"]
        retried, counters = cells[rate, "on"]
        rows.append(
            [
                f"{rate:.0%}",
                bare,
                retried,
                100.0 * (retried - bare) / max(bare, 1),
                counters.retries,
                counters.giveups,
                f"{counters.backoff_ms / 1000.0:.1f}s",
            ]
        )
    print()
    print(
        render_table(
            headers=[
                "fault rate",
                "found (no retry)",
                "found (retry)",
                "recovered %",
                "retries",
                "giveups",
                "virtual backoff",
            ],
            rows=rows,
            title=(
                "ABL-1b: availability fault rate vs usable copies found "
                f"(timeout {SWEEP_TIMEOUT_MS:.0f} ms)"
            ),
        )
    )

    # Without retries, rising fault rates only lose copies: a key
    # faulted at rate r stays faulted at every higher rate.
    bare_counts = [cells[rate, "off"][0] for rate in FAULT_RATES]
    assert bare_counts == sorted(bare_counts, reverse=True)
    # Per record, a no-retry success is untouched by adding retries,
    # so the retrying bot dominates at every rate.
    for rate in FAULT_RATES:
        assert cells[rate, "on"][0] >= cells[rate, "off"][0]
    if not paper_scale:
        return
    assert bare_counts[-1] < bare_counts[0]
    # Even fault-free, retrying recovers latency-timeout casualties.
    assert cells[0.0, "on"][0] > cells[0.0, "off"][0]
    # The faulted retrying bot stays near its own clean ceiling: the
    # transient channels are maskable, so degradation under retry is a
    # small fraction of the no-retry losses at the same rate.
    worst = FAULT_RATES[-1]
    lost_retry = cells[0.0, "on"][0] - cells[worst, "on"][0]
    lost_bare = cells[0.0, "off"][0] - cells[worst, "off"][0]
    assert lost_retry < lost_bare
    assert cells[worst, "on"][1].retries > 0
