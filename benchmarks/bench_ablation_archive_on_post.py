"""ABL-4 — archive every link when it is posted (§5.1's implication).

"The number of links that have to be marked permanently dead can
likely be reduced if the Internet Archive were to more comprehensively
archive every URL soon after a link to it is posted on Wikipedia."

This ablation regenerates small worlds under increasingly aggressive
event-feed policies — the historical coverage, full coverage with a
30-day delay, and full coverage same-day — and compares how many links
end up marked permanently dead and how many of those lack usable
copies.
"""

from __future__ import annotations

import dataclasses

from repro.analysis.study import Study
from repro.clock import SimTime, WIKIPEDIA_START
from repro.dataset.worldgen import WorldConfig, generate_world
from repro.reporting.tables import render_table

ABLATION_LINKS = 2500


def _measure(config: WorldConfig) -> tuple[int, int]:
    world = generate_world(config)
    report = Study.from_world(world).run()
    return report.sample_size, report.n_never_archived


def test_ablation_archive_on_post(benchmark):
    base = WorldConfig(
        n_links=ABLATION_LINKS, target_sample=ABLATION_LINKS, seed=17
    )
    variants = {
        "historical feeds": base,
        "full coverage, 30d delay": dataclasses.replace(
            base,
            wnrt_coverage=1.0,
            eventstream_coverage=1.0,
            wnrt_delay_median_days=30.0,
            eventstream_delay_median_days=30.0,
            # Pretend the feed existed from Wikipedia's start.
            first_sweep=base.first_sweep,
        ),
        "full coverage, same-day": dataclasses.replace(
            base,
            wnrt_coverage=1.0,
            eventstream_coverage=1.0,
            wnrt_delay_median_days=0.2,
            eventstream_delay_median_days=0.2,
        ),
    }

    def sweep():
        return {name: _measure(config) for name, config in variants.items()}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for name, (marked, never) in results.items():
        rows.append([name, marked, never, 100.0 * never / max(marked, 1)])
    print()
    print(
        render_table(
            headers=[
                "feed policy",
                "marked permadead",
                "never archived",
                "never archived %",
            ],
            rows=rows,
            title=(
                "ABL-4: archive-on-post policies "
                f"(worlds of {ABLATION_LINKS} links; feeds active 2013+)"
            ),
        )
    )

    historical_marked, historical_never = results["historical feeds"]
    sameday_marked, sameday_never = results["full coverage, same-day"]
    # Comprehensive prompt archiving must shrink the permanently dead
    # population (more links get patched instead of marked) and its
    # never-archived core.
    assert sameday_marked < historical_marked
    assert sameday_never < historical_never
