"""T-columnar — the batch analysis kernels must beat the loops they replaced.

The columnar PR replaced the per-record Python loops on the analysis
hot path — ECDF construction and KS distances for Figures 3/5/6, the
Figure 4 outcome histogram, and the §3 shingle/sketch similarity
checks — with array-backed batch kernels
(:mod:`repro.analysis.columnar`). Its acceptance bar, at full
benchmark-world scale:

- the columnar kernels on the fast (numpy) backend are **>= 3x**
  faster than the per-record reference over the analysis hot path
  (``fig_aggregation`` + ``soft404_batch`` below);
- their outputs are *value-identical* to the reference — on both
  backends — so the speedup never moves a number in any report.

The reference implementations below are verbatim reconstructions of
the pre-columnar code, taken from git history: the regex-only
``tokenize``, tuple-of-strings ``shingle_set`` / ``jaccard``, the
``tuple(sorted(...))`` ECDF backing arrays, the per-grid-point
``bisect_right`` KS statistic, the dict-loop outcome histogram, the
per-document broadcast MinHash, and the per-pair sketch comparison.

A third block, ``sketching``, times batched MinHash sketching of every
body. It is reported in the JSON but *excluded* from the headline
speedup: sketching happens at archive-capture time, not in the
analysis phases the acceptance bar covers, and its pre-columnar form
was already numpy-vectorised per document — so its (real but smaller)
win would dilute the number the bar is about.

Variants run in interleaved rounds (each reporting its best round, the
one least polluted by the machine) under :meth:`StudyStats.phase` with
a live :class:`Tracer`, so the recorded wall times are attributed the
same way a study run's phases are. Writes ``BENCH_analysis.json`` at
the repo root with per-block and total times for the reference and for
both columnar backends (EXPERIMENTS.md quotes it).
"""

from __future__ import annotations

import gc
import json
import os
import re
import time
from bisect import bisect_right

import pytest

from repro.analysis import columnar
from repro.exec import StudyStats
from repro.net.status import FIGURE4_ORDER
from repro.obs.trace import Tracer
from repro.textsim.shingles import (
    NUM_MINHASHES,
    PERMUTE_MULTIPLIERS,
    PERMUTE_XORS,
    shingle_hash_vector,
    sketch_similarity,
)


#: Soft-404-style document pairs per round (bodies come from the
#: session world's probed URLs, so sizes and vocabularies are real).
PAIR_SLICE = int(os.environ.get("REPRO_BENCH_SOFT404_PAIRS", "4000"))

#: Interleaved timed rounds per variant; each reports its minimum.
ROUNDS = 5

#: The PR's acceptance bar: columnar-on-numpy over the reference.
MIN_SPEEDUP = 3.0

_BLOCKS = ("fig_aggregation", "soft404_batch", "sketching")
#: Blocks the acceptance bar is computed over (see module docstring).
_HEADLINE_BLOCKS = ("fig_aggregation", "soft404_batch")


# -- the pre-columnar reference, reconstructed verbatim ---------------------------

_REFERENCE_TOKEN_RE = re.compile(r"[a-z0-9]+")


def _reference_tokenize(text: str) -> list[str]:
    return _REFERENCE_TOKEN_RE.findall(text.lower())


def _reference_shingle_set(text: str, k: int = 4):
    tokens = _reference_tokenize(text)
    if not tokens:
        return frozenset()
    if len(tokens) < k:
        return frozenset({tuple(tokens)})
    return frozenset(
        tuple(tokens[i: i + k]) for i in range(len(tokens) - k + 1)
    )


def _reference_shingle_similarity(text_a: str, text_b: str) -> float:
    a, b = _reference_shingle_set(text_a), _reference_shingle_set(text_b)
    if not a and not b:
        return 1.0
    union = len(a | b)
    if union == 0:
        return 1.0
    return len(a & b) / union


def _reference_minhash(np, text: str, k: int = 4) -> tuple[int, ...]:
    tokens = _reference_tokenize(text)
    if not tokens:
        return (0,) * NUM_MINHASHES
    shingle_hashes = np.unique(shingle_hash_vector(tokens, k))
    mults = np.asarray(PERMUTE_MULTIPLIERS, dtype=np.uint64)[:, None]
    xors = np.asarray(PERMUTE_XORS, dtype=np.uint64)[:, None]
    with np.errstate(over="ignore"):
        permuted = (shingle_hashes[None, :] ^ xors) * mults
    return tuple(int(value) for value in permuted.min(axis=1))


def _reference_ecdf_values(sample) -> tuple[float, ...]:
    return tuple(sorted(float(v) for v in sample))


def _reference_ks(a_values, b_values) -> float:
    grid = sorted(set(a_values) | set(b_values))
    return max(
        abs(
            bisect_right(a_values, x) / len(a_values)
            - bisect_right(b_values, x) / len(b_values)
        )
        for x in grid
    )


def _reference_outcome_counts(outcomes):
    counts = {key: 0 for key in FIGURE4_ORDER}
    for outcome in outcomes:
        counts[outcome] = counts.get(outcome, 0) + 1
    return counts


def test_columnar_analysis_speedup(
    benchmark, world, report, random_sample_dataset, bench_out
):
    np = columnar.get_numpy()
    if np is None:
        pytest.skip(
            "the pre-columnar reference needs numpy "
            "(the code it reconstructs imported it unconditionally)"
        )

    # -- workload inputs, prepared untimed ------------------------------------
    ds = report.dataset
    rs = random_sample_dataset
    fig_samples = {
        "domains_ds": list(ds.domains().values()),
        "domains_rs": list(rs.domains().values()),
        "years_ds": ds.posting_years(),
        "years_rs": rs.posting_years(),
        "gaps": [max(g, 0.5) for g in report.temporal.gaps_days],
        "directory": [max(c, 0.5) for c in report.spatial.directory_counts],
        "hostname": [max(c, 0.5) for c in report.spatial.hostname_counts],
    }
    #: The paper's representativeness check: KS between the dataset
    #: series and the random-sample control series.
    ks_pairs = [("domains_ds", "domains_rs"), ("years_ds", "years_rs")]
    outcomes = [probe.outcome for probe in report.probes]

    bodies = [
        probe.result.body for probe in report.probes[:PAIR_SLICE]
    ]
    doc_pairs = list(zip(bodies, bodies[1:] + bodies[:1]))
    # Sketch pairs reuse precomputed sketches, exactly as the
    # archived-copy twin scan compares snapshot sketches it never
    # re-derives. (Sketches are backend-independent, so which kernel
    # builds them here does not matter.)
    sketches = columnar.minhash_sketch_batch(bodies)
    sketch_pairs = list(zip(sketches, sketches[1:] + sketches[:1]))

    def fig_aggregation(ecdf_values, ks, histogram):
        curves = {
            name: ecdf_values(sample) for name, sample in fig_samples.items()
        }
        distances = [ks(curves[a], curves[b]) for a, b in ks_pairs]
        return curves, distances, histogram(outcomes)

    def soft404_batch(similarity_batch, fraction_batch):
        return similarity_batch(doc_pairs), fraction_batch(sketch_pairs)

    def sketching(sketch_batch):
        return sketch_batch(bodies)

    _VARIANT_ARGS = {
        "reference": {
            "fig_aggregation": (
                _reference_ecdf_values, _reference_ks,
                _reference_outcome_counts,
            ),
            "soft404_batch": (
                lambda pairs: [
                    _reference_shingle_similarity(a, b) for a, b in pairs
                ],
                lambda pairs: [sketch_similarity(a, b) for a, b in pairs],
            ),
            "sketching": (
                lambda texts: [_reference_minhash(np, t) for t in texts],
            ),
        },
        "columnar": {
            "fig_aggregation": (
                columnar.sorted_floats,
                columnar.ks_distance,
                lambda labels: columnar.bucket_counts(labels, FIGURE4_ORDER),
            ),
            "soft404_batch": (
                columnar.shingle_similarity_batch,
                columnar.sketch_similarity_batch,
            ),
            "sketching": (columnar.minhash_sketch_batch,),
        },
    }
    _BLOCK_FNS = {
        "fig_aggregation": fig_aggregation,
        "soft404_batch": soft404_batch,
        "sketching": sketching,
    }

    def run_variant(variant: str):
        return tuple(
            _BLOCK_FNS[block](*_VARIANT_ARGS[variant][block])
            for block in _BLOCKS
        )

    # -- value identity, checked untimed on every backend ----------------------
    expected = run_variant("reference")
    backends = ["stdlib", "numpy"]
    for name in backends:
        prior = columnar.force_backend(name)
        try:
            assert run_variant("columnar") == expected, (
                f"columnar[{name}] changed the measurement"
            )
        finally:
            columnar.force_backend(prior)

    # -- interleaved timing, phase-attributed ----------------------------------
    stats = StudyStats()
    tracer = Tracer(prefix="bench.")

    def one_round(variant: str, phase: str) -> dict[str, float]:
        gc.collect()
        walls = {}
        for block in _BLOCKS:
            with stats.phase(f"{phase}/{block}", tracer=tracer):
                start = time.perf_counter()
                _BLOCK_FNS[block](*_VARIANT_ARGS[variant][block])
                walls[block] = time.perf_counter() - start
        return walls

    def _timed_variant(variant: str, warm: bool = False):
        if variant == "reference":
            return one_round("reference", "warm" if warm else "reference")
        name = variant[len("columnar["):-1]
        prior = columnar.force_backend(name)
        try:
            return one_round("columnar", "warm" if warm else variant)
        finally:
            columnar.force_backend(prior)

    def run() -> dict[str, dict[str, float]]:
        # Warm every variant once, then alternate so session-scale
        # machine drift hits all of them equally.
        variants = ["reference"] + [f"columnar[{name}]" for name in backends]
        for variant in variants:
            _timed_variant(variant, warm=True)
        best: dict[str, dict[str, float]] = {
            variant: {block: float("inf") for block in _BLOCKS}
            for variant in variants
        }
        for _ in range(ROUNDS):
            for variant in variants:
                walls = _timed_variant(variant)
                for block, wall in walls.items():
                    best[variant][block] = min(best[variant][block], wall)
        return best

    best = benchmark.pedantic(run, rounds=1, iterations=1)

    headline = {
        variant: sum(walls[block] for block in _HEADLINE_BLOCKS)
        for variant, walls in best.items()
    }
    print()
    for variant, walls in best.items():
        blocks = ", ".join(
            f"{block} {wall:.4f}s" for block, wall in walls.items()
        )
        print(
            f"-- {variant}, best of {ROUNDS}: "
            f"headline {headline[variant]:.4f}s ({blocks})"
        )

    fast = "columnar[numpy]"
    speedup = headline["reference"] / max(headline[fast], 1e-9)
    sketching_speedup = best["reference"]["sketching"] / max(
        best[fast]["sketching"], 1e-9
    )
    phase_seconds = {
        name: round(seconds, 4)
        for name, seconds in stats.phase_seconds.items()
        if not name.startswith("warm/")
    }
    payload = {
        "links": len(report.probes),
        "soft404_pairs": len(doc_pairs),
        "rounds": ROUNDS,
        "fast_backend": "numpy",
        "headline_blocks": list(_HEADLINE_BLOCKS),
        "blocks": {
            block: {
                variant: round(walls[block], 4)
                for variant, walls in best.items()
            }
            for block in _BLOCKS
        },
        "headline_seconds": {
            variant: round(total, 4) for variant, total in headline.items()
        },
        "speedup": round(speedup, 2),
        "sketching_speedup": round(sketching_speedup, 2),
        "identical_outputs": True,
        #: Tracer-attributed cumulative phase seconds across all
        #: rounds (the same attribution a study run's stats carry).
        "phase_seconds_total": phase_seconds,
    }
    out = bench_out("BENCH_analysis.json")
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"speedup ({fast} vs reference): {speedup:.2f}x -> {out.name}")
    assert speedup >= MIN_SPEEDUP, (
        f"columnar speedup {speedup:.2f}x below {MIN_SPEEDUP:.0f}x"
    )
