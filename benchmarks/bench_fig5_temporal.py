"""FIG5 / T5-1 — when was the first copy captured? (paper §5.1).

Regenerates Figure 5's CDF of the gap between a link's Wikipedia
posting and the Wayback Machine's first subsequent capture, plus the
surrounding counts: the 8,918 no-200-copy links split into 6,936
archived / 1,982 never archived; 619 of the archived had pre-posting
copies; 437 were captured the day they were posted, 266 of those with
an erroneous copy first-up (user typos).
"""

from __future__ import annotations

from repro.analysis.temporal import temporal_analysis
from repro.reporting.cdf import ecdf
from repro.reporting.figures import render_cdf
from repro.reporting.summary import ComparisonTable


def test_fig5_first_capture_gap(benchmark, world, report):
    rest_with_copy = [
        c for c in report.censuses
        if not c.has_pre_marking_200 and c.has_any_copy
    ]

    def analyse():
        return temporal_analysis(rest_with_copy[:400], world.cdx)

    benchmark(analyse)

    temporal = report.temporal
    gaps = temporal.gaps_days
    curve = ecdf([max(g, 0.5) for g in gaps])

    print()
    print(
        render_cdf(
            {"gap": curve},
            title=(
                "Figure 5: days between posting and first capture "
                f"(n={len(gaps)}; paper n=6,317)"
            ),
            x_label="days",
            log_x=True,
        )
    )

    rest = max(report.n_rest, 1)
    archived = max(report.n_rest_with_any_copy, 1)
    gap_pop = max(len(temporal.gap_population), 1)
    table = ComparisonTable(title="§5.1 temporal analysis")
    table.add(
        "never archived (% of rest)",
        paper=22.2,  # 1,982 / 8,918
        measured=100.0 * report.n_never_archived / rest,
        tolerance=0.6,
    )
    table.add(
        "pre-posting copies (% of archived)",
        paper=8.9,  # 619 / 6,936
        measured=100.0 * len(temporal.with_pre_posting_copy) / archived,
        tolerance=0.7,
    )
    table.add(
        "same-day first capture (% of gap population)",
        paper=6.9,  # 437 / 6,317
        measured=100.0 * len(temporal.same_day) / gap_pop,
        tolerance=0.8,
    )
    table.add(
        "same-day captures erroneous first-up (%)",
        paper=61.0,  # 266 / 437
        measured=(
            100.0
            * len(temporal.same_day_erroneous)
            / max(len(temporal.same_day), 1)
        ),
        tolerance=0.6,
    )
    table.add(
        "median gap (days)",
        paper=500.0,  # text: "several months or even a few years"
        measured=curve.quantile(0.5),
        unit="days",
        tolerance=1.2,
    )
    print(table.render())

    # The section's headline: large first-capture delays are the norm.
    over_six_months = 1.0 - curve.at(180.0)
    assert over_six_months > 0.5, "most links must wait months for a capture"
    assert curve.quantile(0.9) > 1000.0, "the tail must reach years"
    assert table.all_within_band, table.failures()
