"""Full-scale study run: every figure and headline number, printed.

Used to produce the paper-vs-measured record in EXPERIMENTS.md.

Usage::

    python scripts/full_run.py [n_links] [seed] [workers] [options]
    python scripts/full_run.py --update-golden

Positionals keep their historical meaning (world size, world seed,
worker count); ``REPRO_WORKERS`` still backs the worker default. The
fault/retry options study the same world through a sabotaged stack:

    --fault-plan {net,archive,everywhere}   which channels misbehave
    --fault-rate R       per-key fault probability (REPRO_FAULT_RATE)
    --fault-seed S       fault plan seed (replayable chaos)
    --retries N          retry budget, 0 = the paper's no-retry bot
                         (REPRO_RETRIES); capped-exponential backoff

With a transient plan and ``--retries`` at the plan's required depth,
the printed report is byte-identical to the fault-free run — only the
``retries:`` line of the stats block shows the recovered faults.

Observability options record the run without changing it (a traced
report is byte-identical to an untraced one)::

    --trace PATH         append the span tree (study → phase → shard →
                         record → backend call) as JSONL; feed it to
                         scripts/trace_report.py
    --metrics-json PATH  dump the full StudyStats metrics registry
                         (counters, gauges, histograms) as JSON

``--update-golden`` regenerates the committed golden snapshot
(tests/golden/study_report_tiny.md) that tier-1 compares against, then
exits.
"""

import argparse
import json
import os
import sys
import time
from pathlib import Path

from repro.analysis.study import Study
from repro.backends import StackConfig
from repro.dataset.worldgen import WorldConfig, generate_world
from repro.exec import StudyExecutor
from repro.net.status import Outcome
from repro.reporting.cdf import ecdf
from repro.reporting.figures import render_bar_chart, render_cdf
from repro.reporting.summary import ComparisonTable

REPO_ROOT = Path(__file__).resolve().parent.parent


def parse_args(argv):
    parser = argparse.ArgumentParser(
        description="Run the full study and print every figure and table."
    )
    parser.add_argument("n_links", nargs="?", type=int, default=26_000)
    parser.add_argument("seed", nargs="?", type=int, default=11)
    parser.add_argument(
        "workers",
        nargs="?",
        type=int,
        default=int(os.environ.get("REPRO_WORKERS", "1")),
        help="worker processes for the sharded stage (REPRO_WORKERS)",
    )
    parser.add_argument(
        "--target-sample", type=int, default=10_000, help="links to sample"
    )
    StackConfig.add_stack_args(parser)
    parser.add_argument(
        "--update-golden",
        action="store_true",
        help="regenerate tests/golden/study_report_tiny.md and exit",
    )
    return parser.parse_args(argv)


def main(argv=None) -> int:
    args = parse_args(argv if argv is not None else sys.argv[1:])

    if args.update_golden:
        from repro.reporting.golden import update_golden

        path = update_golden(REPO_ROOT)
        print(f"golden snapshot regenerated: {path.relative_to(REPO_ROOT)}")
        return 0

    config = StackConfig.from_args(args)
    faults = config.build_faults()
    retry_policy = config.build_retry_policy()
    tracer = config.build_tracer()

    t0 = time.time()
    world = generate_world(
        WorldConfig(
            n_links=args.n_links,
            target_sample=args.target_sample,
            seed=args.seed,
        )
    )
    t1 = time.time()
    report = Study.from_world(
        world, faults=faults, retry_policy=retry_policy
    ).run(executor=StudyExecutor(workers=args.workers), tracer=tracer)

    if tracer is not None:
        tracer.write_jsonl(args.trace)
    if args.metrics_json is not None:
        args.metrics_json.write_text(
            json.dumps(report.stats.as_dict(), indent=2, sort_keys=True)
            + "\n"
        )

    n = report.sample_size
    print(f"# world: {world.summary()}")
    # The study figure comes from the stats' own phase timers rather
    # than a second ad-hoc clock around .run(), so this line, the
    # stats block below, and any trace report all agree.
    print(
        f"# generation {t1 - t0:.2f}s, "
        f"study {report.stats.total_seconds:.2f}s"
    )
    if tracer is not None:
        print(f"# trace: {len(tracer.spans)} spans -> {args.trace}")
    if faults is not None:
        print(f"# faults: {faults.describe()}")
        print(
            f"# retry budget: {args.retries} "
            f"(plan needs {faults.required_retries()} to mask fully)"
        )
    for line in report.stats.summary().splitlines():
        print(f"# {line}")
    print()
    print(report.summary())
    print()

    ds = report.dataset
    print(
        f"dataset: {len(ds.domains())} domains, {len(ds.hostnames())} "
        "hostnames (paper: 3,521 / 3,940)"
    )
    print()

    domain_curve = ecdf(list(ds.domains().values()))
    print(render_cdf({"our dataset": domain_curve},
                     "Figure 3(a): URLs per domain", "urls/domain", log_x=True))
    print()
    rank_curve = ecdf(ds.rankings())
    print(render_cdf({"our dataset": rank_curve},
                     "Figure 3(b): site ranking", "rank"))
    print()
    year_curve = ecdf(ds.posting_years())
    print(render_cdf({"our dataset": year_curve},
                     "Figure 3(c): posting year", "year"))
    print()
    print(render_bar_chart({o.value: c for o, c in report.counts.items()},
                           f"Figure 4: live-web outcomes (n={n})"))
    print()
    gaps = ecdf([max(g, 0.5) for g in report.temporal.gaps_days])
    print(render_cdf({"gap": gaps},
                     "Figure 5: posting-to-first-capture gap (days)",
                     "days", log_x=True))
    print()
    spatial = report.spatial
    print(render_cdf(
        {
            "directory": ecdf([max(c, 0.5) for c in spatial.directory_counts]),
            "hostname": ecdf([max(c, 0.5) for c in spatial.hostname_counts]),
        },
        "Figure 6: archived neighbors of never-archived links",
        "neighbors",
        log_x=True,
    ))
    print()

    table = ComparisonTable(title="Headline numbers, paper vs measured")
    counts = report.counts
    rest = max(report.n_rest, 1)
    never = max(report.n_never_archived, 1)
    gap_pop = max(len(report.temporal.gap_population), 1)
    archived = max(report.n_rest_with_any_copy, 1)
    rows = [
        ("fig4 DNS failure %", 28.0, 100 * counts[Outcome.DNS_FAILURE] / n),
        ("fig4 timeout %", 6.0, 100 * counts[Outcome.TIMEOUT] / n),
        ("fig4 404 %", 44.0, 100 * counts[Outcome.HTTP_404] / n),
        ("fig4 200 %", 16.5, 100 * counts[Outcome.HTTP_200] / n),
        ("fig4 other %", 5.5, 100 * counts[Outcome.OTHER] / n),
        ("s3 genuinely alive %", 3.05, 100 * report.frac_genuinely_alive),
        ("s3 alive-via-redirect %", 79.0, 100 * report.frac_alive_via_redirect),
        ("s3 first post-marking copy erroneous %", 95.0,
         100 * report.frac_first_post_marking_erroneous),
        ("s4.1 pre-marking 200 copies %", 10.8,
         100 * report.frac_pre_marking_200),
        ("s4.2 3xx copies, % of rest", 42.3,
         100 * report.n_rest_with_pre_3xx / rest),
        ("s4.2 validated redirects, % of sample", 4.8,
         100 * report.frac_patchable_via_redirect),
        ("s5 never archived, % of rest", 22.2,
         100 * report.n_never_archived / rest),
        ("s5 pre-posting copies, % of archived", 8.9,
         100 * len(report.temporal.with_pre_posting_copy) / archived),
        ("s5 same-day captures, % of gap pop", 6.9,
         100 * len(report.temporal.same_day) / gap_pop),
        ("s5 same-day erroneous first-up %", 61.0,
         100 * len(report.temporal.same_day_erroneous)
         / max(len(report.temporal.same_day), 1)),
        ("s5.2 directory gaps, % of never-archived", 37.8,
         100 * len(spatial.directory_gaps) / never),
        ("s5.2 hostname gaps, % of never-archived", 12.9,
         100 * len(spatial.hostname_gaps) / never),
        ("s5.2 typos, % of never-archived", 11.0,
         100 * len(report.typos) / never),
    ]
    for name, paper, measured in rows:
        table.add(name, paper=paper, measured=measured, tolerance=0.6)
    print(table.render())
    return 0


if __name__ == "__main__":
    sys.exit(main())
