"""Calibration harness: measured vs paper, one row per headline number.

Usage: python scripts/calibrate.py [n_links] [seed]
"""

import sys
import time

from repro.dataset.worldgen import WorldConfig, generate_world
from repro.analysis.study import Study
from repro.net.status import Outcome

n_links = int(sys.argv[1]) if len(sys.argv) > 1 else 6000
seed = int(sys.argv[2]) if len(sys.argv) > 2 else 11

t0 = time.time()
cfg = WorldConfig(n_links=n_links, target_sample=n_links, seed=seed)
world = generate_world(cfg)
t1 = time.time()
report = Study.from_world(world).run()
t2 = time.time()

n = report.sample_size
c = report.counts
rest = max(report.n_rest, 1)
never = max(report.n_never_archived, 1)
gapn = max(len(report.temporal.gap_population), 1)
restcopy = max(report.n_rest_with_any_copy, 1)

rows = [
    ("sample size", n, "10000 (17k marked; sampled)"),
    ("fig4 DNS failure %", 100 * c[Outcome.DNS_FAILURE] / n, 28),
    ("fig4 timeout %", 100 * c[Outcome.TIMEOUT] / n, 6),
    ("fig4 404 %", 100 * c[Outcome.HTTP_404] / n, 44),
    ("fig4 200 %", 100 * c[Outcome.HTTP_200] / n, 16.5),
    ("fig4 other %", 100 * c[Outcome.OTHER] / n, 5.5),
    ("s3 alive %", 100 * report.frac_genuinely_alive, 3.05),
    ("s3 alive-redirect %", 100 * report.frac_alive_via_redirect, 79),
    ("s3 postmark-err %", 100 * report.frac_first_post_marking_erroneous, 95),
    ("s4 pre-200 %", 100 * report.frac_pre_marking_200, 10.8),
    ("s4 3xx of rest %", 100 * report.n_rest_with_pre_3xx / rest, 42.3),
    ("s4 valid-redirect % of sample", 100 * report.frac_patchable_via_redirect, 4.8),
    ("s5 never-archived % of rest", 100 * report.n_never_archived / rest, 22.2),
    ("s5 pre-posting % of archived", 100 * len(report.temporal.with_pre_posting_copy) / restcopy, 8.9),
    ("s5 same-day % of gap-pop", 100 * len(report.temporal.same_day) / gapn, 6.9),
    ("s5 same-day-err % of same-day", 100 * len(report.temporal.same_day_erroneous) / max(len(report.temporal.same_day), 1), 61),
    ("s5 dir-gap % of never", 100 * len(report.spatial.directory_gaps) / never, 37.8),
    ("s5 host-gap % of never", 100 * len(report.spatial.hostname_gaps) / never, 12.9),
    ("s5 typo % of never", 100 * len(report.typos) / never, 11.0),
]
print(f"gen {t1-t0:.0f}s study {t2-t1:.0f}s  | {world.summary()}")
print(f"{'metric':38s} {'measured':>9s} {'paper':>9s}")
for name, measured, target in rows:
    try:
        print(f"{name:38s} {measured:9.1f} {float(target):9.1f}")
    except (TypeError, ValueError):
        print(f"{name:38s} {measured!s:>9s} {target!s:>9s}")

import math
gaps = sorted(report.temporal.gaps_days)
if gaps:
    def q(p):
        return gaps[min(int(p * len(gaps)), len(gaps) - 1)]
    print(f"fig5 gap days: p10={q(.1):.0f} p25={q(.25):.0f} p50={q(.5):.0f} p75={q(.75):.0f} p90={q(.9):.0f}")
