"""Demo: the live pipeline, from batch baseline to swapped generations.

Usage::

    python scripts/live_demo.py [n_links] [seed] [options]

    --generations N     index generations to build (default 6; the
                        first is the classic batch study)
    --interval-days D   sim days between builds (default 7)
    --reprobe-days R    quiescent-URL re-probe epoch (default 30)
    --requests M        replay M requests across the generation swaps
                        (default 4000; 0 skips the serving replay)
    --chaos             crash replicas mid-replay (cluster tier) and
                        show the swap staying clean under it
    --json PATH         write the run digest as JSON

Builds a world, then keeps it *moving*: each interval the bot sweeps a
rolling article shard, editors delete dead references, and the
incremental engine re-measures only the dirty set — printing, per
generation: the content-hash id, dirty-set size vs sample, events
consumed, rebuild wall cost, and the dead-link-rate drift since the
baseline. The published generations are then installed into a serving
replay via the zero-downtime ``swaps=`` schedule; every response
carries the generation that answered it, and the per-generation served
counts show the cutover. Everything except wall time is deterministic
in (world seed, workload seed, config) — run it twice and diff.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.clock import SimTime
from repro.dataset.worldgen import WorldConfig, generate_world
from repro.faults import FaultSpec
from repro.live import (
    GenerationPublisher,
    IncrementalStudy,
    ReprobePolicy,
    WorldDriver,
)
from repro.obs import evaluate
from repro.obs.slo import MS_PER_DAY, SloSpec, events_from_generations
from repro.service import (
    ClusterConfig,
    ClusterService,
    LinkStatusService,
    ServerConfig,
    ServiceFaultPlan,
    WorkloadConfig,
    generate_workload,
)


def parse_args(argv):
    parser = argparse.ArgumentParser(
        description="Drive a world forward and swap index generations."
    )
    parser.add_argument("n_links", nargs="?", type=int, default=2600)
    parser.add_argument("seed", nargs="?", type=int, default=11)
    parser.add_argument("--generations", type=int, default=6)
    parser.add_argument("--interval-days", type=float, default=7.0)
    parser.add_argument("--reprobe-days", type=float, default=30.0)
    parser.add_argument("--requests", type=int, default=4000)
    parser.add_argument("--chaos", action="store_true")
    parser.add_argument("--json", default=None)
    return parser.parse_args(argv)


def drive_interval(driver, world, at_days: float, interval: float, ordinal: int):
    """One interval of world motion: a sweep, plus editorial churn."""
    driver.sweep(SimTime(at_days - 0.6 * interval))
    refs = driver.permadead_refs()
    if ordinal % 2 == 0 and refs:
        title, url = refs[ordinal % len(refs)]
        driver.remove_link(title, url, SimTime(at_days - 0.3 * interval))
    elif refs:
        # Between deletions, the archive races to cover what it can.
        driver.capture(
            refs[ordinal % len(refs)][1], SimTime(at_days - 0.3 * interval)
        )


def main(argv=None) -> int:
    args = parse_args(argv if argv is not None else sys.argv[1:])

    print(f"world: {args.n_links} links, seed {args.seed}")
    world = generate_world(
        WorldConfig(
            n_links=args.n_links, target_sample=args.n_links, seed=args.seed
        )
    )
    driver = WorldDriver(world)
    engine = IncrementalStudy(
        world, seed=args.seed,
        policy=ReprobePolicy(every_days=args.reprobe_days),
    )
    publisher = GenerationPublisher(retain=args.generations)

    base = world.study_time.days
    baseline_dead = None
    print()
    for ordinal in range(args.generations):
        at = SimTime(base + ordinal * args.interval_days)
        if ordinal > 0:
            drive_interval(
                driver, world, at.days, args.interval_days, ordinal
            )
        result = engine.build(at)
        generation = publisher.publish(result)
        dead_rate = 1.0 - result.report.frac_genuinely_alive
        if baseline_dead is None:
            baseline_dead = dead_rate
        print(
            f"  {generation.summary()}\n"
            f"      {result.dirty.summary()}, "
            f"{result.events_consumed} events; dead-rate "
            f"{100 * dead_rate:.2f}% "
            f"({100 * (dead_rate - baseline_dead):+.2f}% vs baseline)"
        )

    freshness = evaluate(
        events_from_generations(publisher.generations),
        (
            SloSpec(
                name="index-freshness", kind="latency", objective=0.99,
                threshold_ms=2.0 * args.interval_days * MS_PER_DAY,
            ),
        ),
    )
    print(f"\nindex-freshness SLO (2x interval budget): "
          f"{'met' if freshness.met else 'VIOLATED'}")

    payload = {
        "generations": [
            {
                "seq": g.seq,
                "version": g.version,
                "dirty": g.dirty_size,
                "events": g.events_consumed,
                "lag_days": g.lag_days,
                "rebuild_ms": round(g.rebuild_wall_ms, 2),
            }
            for g in publisher.generations
        ],
        "freshness_met": freshness.met,
    }

    if args.requests:
        generations = publisher.generations
        first = generations[0]
        workload = generate_workload(
            [entry.url for entry in first.index.entries],
            WorkloadConfig(n_requests=args.requests, seed=args.seed),
        )
        horizon = max(r.arrival_ms for r in workload)
        swaps = [
            (horizon * (i + 1) / len(generations), g.index)
            for i, g in enumerate(generations[1:])
        ]
        if args.chaos:
            service = ClusterService(
                first.index, ServerConfig(),
                ClusterConfig(n_shards=2, replicas_per_shard=2),
                faults=ServiceFaultPlan(
                    seed=args.seed,
                    replica_crash=FaultSpec(rate=0.5),
                    crash_horizon_ms=horizon,
                ),
            )
        else:
            service = LinkStatusService(first.index)
        result = service.serve(workload, swaps=swaps)
        served: dict[str, int] = {}
        for response in result.responses:
            served[response.index_version] = served.get(
                response.index_version, 0
            ) + 1
        print()
        print(result.summary())
        if args.chaos:
            print(
                f"  chaos: {len(result.fault_events)} replica fault "
                f"events, {len(result.unavailable_ids)} gave up (503)"
            )
        print(f"  zero-downtime swaps: {len(swaps)}")
        for generation in generations:
            count = served.get(generation.version, 0)
            print(f"    gen {generation.seq} ({generation.version}): "
                  f"{count} responses")
        payload["serve"] = result.as_dict()
        payload["served_by_generation"] = served

    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"\nwrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
