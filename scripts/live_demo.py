"""Demo: the live pipeline, from batch baseline to swapped generations.

Usage::

    python scripts/live_demo.py [n_links] [seed] [options]

    --generations N     index generations to build (default 6; the
                        first is the classic batch study)
    --interval-days D   sim days between builds (default 7)
    --reprobe-days R    quiescent-URL re-probe epoch (default 30)
    --requests M        replay M requests across the generation swaps
                        (default 4000; 0 skips the serving replay)
    --chaos             crash replicas mid-replay (cluster tier) and
                        show the swap staying clean under it
    --rolling           drained per-replica rolling cutovers instead
                        of atomic fleet-wide swaps
    --full-snapshots    ship whole index snapshots instead of verified
                        generation deltas
    --rebalance         (with --chaos) migrate the hottest domain's
                        routing keys between shards mid-replay
    --json PATH         write the run digest as JSON

Builds a world, then keeps it *moving*: each interval the bot sweeps a
rolling article shard, editors delete dead references, and the
incremental engine re-measures only the dirty set — printing, per
generation: the content-hash id, dirty-set size vs sample, events
consumed, rebuild wall cost, and the dead-link-rate drift since the
baseline. The published generations are then installed into a serving
replay through the reconfiguration plane: by default each cutover
ships a content-addressed :class:`GenerationDelta` (dirty subset
only — the byte savings are printed per delta) and applies atomically;
``--rolling`` drains instead, and ``--rebalance`` moves a hot domain
between shards mid-replay via the same machinery. Every response
carries the generation that answered it, and the per-generation served
counts show the cutover. Everything except wall time is deterministic
in (world seed, workload seed, config) — run it twice and diff.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.clock import SimTime
from repro.dataset.worldgen import WorldConfig, generate_world
from repro.faults import FaultSpec
from repro.live import (
    GenerationPublisher,
    IncrementalStudy,
    ReprobePolicy,
    WorldDriver,
)
from repro.obs import evaluate
from repro.obs.slo import MS_PER_DAY, SloSpec, events_from_generations
from repro.service import (
    ClusterConfig,
    ClusterService,
    DeltaApply,
    GenerationSwap,
    LinkStatusService,
    ServerConfig,
    ServiceFaultPlan,
    WorkloadConfig,
    generate_workload,
    snapshot_wire_bytes,
)
from repro.service import RebalancePlan
from repro.service.router import rendezvous_owner, routing_key


def parse_args(argv):
    parser = argparse.ArgumentParser(
        description="Drive a world forward and swap index generations."
    )
    parser.add_argument("n_links", nargs="?", type=int, default=2600)
    parser.add_argument("seed", nargs="?", type=int, default=11)
    parser.add_argument("--generations", type=int, default=6)
    parser.add_argument("--interval-days", type=float, default=7.0)
    parser.add_argument("--reprobe-days", type=float, default=30.0)
    parser.add_argument("--requests", type=int, default=4000)
    parser.add_argument("--chaos", action="store_true")
    parser.add_argument("--rolling", action="store_true")
    parser.add_argument("--full-snapshots", action="store_true")
    parser.add_argument("--rebalance", action="store_true")
    parser.add_argument("--json", default=None)
    return parser.parse_args(argv)


def drive_interval(driver, world, at_days: float, interval: float, ordinal: int):
    """One interval of world motion: a sweep, plus editorial churn."""
    driver.sweep(SimTime(at_days - 0.6 * interval))
    refs = driver.permadead_refs()
    if ordinal % 2 == 0 and refs:
        title, url = refs[ordinal % len(refs)]
        driver.remove_link(title, url, SimTime(at_days - 0.3 * interval))
    elif refs:
        # Between deletions, the archive races to cover what it can.
        driver.capture(
            refs[ordinal % len(refs)][1], SimTime(at_days - 0.3 * interval)
        )


def main(argv=None) -> int:
    args = parse_args(argv if argv is not None else sys.argv[1:])

    print(f"world: {args.n_links} links, seed {args.seed}")
    world = generate_world(
        WorldConfig(
            n_links=args.n_links, target_sample=args.n_links, seed=args.seed
        )
    )
    driver = WorldDriver(world)
    engine = IncrementalStudy(
        world, seed=args.seed,
        policy=ReprobePolicy(every_days=args.reprobe_days),
    )
    publisher = GenerationPublisher(retain=args.generations)

    base = world.study_time.days
    baseline_dead = None
    print()
    for ordinal in range(args.generations):
        at = SimTime(base + ordinal * args.interval_days)
        if ordinal > 0:
            drive_interval(
                driver, world, at.days, args.interval_days, ordinal
            )
        result = engine.build(at)
        generation = publisher.publish(result)
        dead_rate = 1.0 - result.report.frac_genuinely_alive
        if baseline_dead is None:
            baseline_dead = dead_rate
        print(
            f"  {generation.summary()}\n"
            f"      {result.dirty.summary()}, "
            f"{result.events_consumed} events; dead-rate "
            f"{100 * dead_rate:.2f}% "
            f"({100 * (dead_rate - baseline_dead):+.2f}% vs baseline)"
        )

    freshness = evaluate(
        events_from_generations(publisher.generations),
        (
            SloSpec(
                name="index-freshness", kind="latency", objective=0.99,
                threshold_ms=2.0 * args.interval_days * MS_PER_DAY,
            ),
        ),
    )
    print(f"\nindex-freshness SLO (2x interval budget): "
          f"{'met' if freshness.met else 'VIOLATED'}")

    payload = {
        "generations": [
            {
                "seq": g.seq,
                "version": g.version,
                "dirty": g.dirty_size,
                "events": g.events_consumed,
                "lag_days": g.lag_days,
                "rebuild_ms": round(g.rebuild_wall_ms, 2),
            }
            for g in publisher.generations
        ],
        "freshness_met": freshness.met,
    }

    if args.requests:
        # Adjacent generations can share a version (a quiet interval);
        # the schedule validator rejects no-op swaps, so collapse them.
        lineage = [publisher.generations[0]]
        for generation in publisher.generations[1:]:
            if generation.version != lineage[-1].version:
                lineage.append(generation)
        first = lineage[0]
        workload = generate_workload(
            [entry.url for entry in first.index.entries],
            WorkloadConfig(n_requests=args.requests, seed=args.seed),
        )
        horizon = max(r.arrival_ms for r in workload)
        swaps = []
        delta_digest = []
        for i, generation in enumerate(lineage[1:]):
            at_ms = horizon * (i + 1) / len(lineage)
            if args.full_snapshots:
                swaps.append(GenerationSwap(
                    at_ms=at_ms, drain=args.rolling,
                    index=generation.index,
                ))
            else:
                delta = publisher.build_delta(lineage[i], generation)
                full = snapshot_wire_bytes(generation.index)
                print(
                    f"  {delta.summary()} "
                    f"({100 * delta.wire_bytes() / full:.1f}% of the "
                    f"{full}-byte snapshot)"
                )
                delta_digest.append({
                    "delta_id": delta.delta_id,
                    "to_version": delta.to_version,
                    "delta_bytes": delta.wire_bytes(),
                    "snapshot_bytes": full,
                })
                swaps.append(DeltaApply(
                    at_ms=at_ms, drain=args.rolling, delta=delta,
                ))
        if args.chaos:
            service = ClusterService(
                first.index, ServerConfig(),
                ClusterConfig(n_shards=2, replicas_per_shard=2),
                faults=ServiceFaultPlan(
                    seed=args.seed,
                    replica_crash=FaultSpec(rate=0.5),
                    crash_horizon_ms=horizon,
                ),
            )
            if args.rebalance:
                # Move the hottest domain's routing key to the other
                # shard mid-replay, through the same drain machinery.
                heat: dict[str, int] = {}
                for request in workload:
                    key = routing_key(request.kind, request.target)
                    heat[key] = heat.get(key, 0) + 1
                hottest = max(heat, key=lambda k: (heat[k], k))
                owner = rendezvous_owner(hottest, service.shard_ids)
                target = next(
                    shard for shard in service.shard_ids
                    if shard != owner
                )
                swaps.append(RebalancePlan(
                    at_ms=0.47 * horizon, moves=((hottest, target),),
                ))
                print(
                    f"  rebalance: {hottest!r} "
                    f"({heat[hottest]} requests) {owner} -> {target} "
                    f"at {0.47 * horizon:.0f}ms"
                )
        else:
            service = LinkStatusService(first.index)
            if args.rebalance:
                print("  (--rebalance needs --chaos's cluster tier; "
                      "ignored)")
        result = service.serve(workload, swaps=swaps)
        served: dict[str, int] = {}
        for response in result.responses:
            served[response.index_version] = served.get(
                response.index_version, 0
            ) + 1
        print()
        print(result.summary())
        if args.chaos:
            print(
                f"  chaos: {len(result.fault_events)} replica fault "
                f"events, {len(result.unavailable_ids)} gave up (503)"
            )
        discipline = "rolling drained" if args.rolling else "atomic"
        print(f"  zero-downtime reconfigurations: {len(swaps)} "
              f"({discipline})")
        for event in result.reconfig_events:
            print(
                f"    {event.kind} at {event.scheduled_ms:.1f}ms -> "
                f"{event.to_version} (lag {event.lag_ms:.2f}ms, "
                f"{event.drained_batches} drained, "
                f"{event.moved_keys} keys moved)"
            )
        for generation in lineage:
            count = served.get(generation.version, 0)
            print(f"    gen {generation.seq} ({generation.version}): "
                  f"{count} responses")
        payload["serve"] = result.as_dict()
        payload["served_by_generation"] = served
        payload["deltas"] = delta_digest
        payload["reconfigs"] = [
            event.as_dict() for event in result.reconfig_events
        ]

    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"\nwrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
