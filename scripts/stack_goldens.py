"""Regenerate the backend-stack differential goldens.

The refactor contract of ``repro.backends`` is *semantics preservation
by construction*: a study run through the composed middleware stack
must produce a byte-identical :class:`StudyReport` to the pre-refactor
hand-written wrappers, clean or faulted, serial or sharded. This
script pins that contract: it renders the study of the pinned golden
world under every differential scenario and records a SHA-256 digest
of each rendered report in ``tests/golden/stack_differential.json``.

``tests/test_backends.py`` recomputes the digests on every tier-1 run
and compares byte-for-byte. The committed digests were produced on the
pre-refactor tree (PR 1-4 wrappers), so a match *is* the differential
proof the refactor claims.

Usage::

    PYTHONPATH=src python scripts/stack_goldens.py          # verify
    PYTHONPATH=src python scripts/stack_goldens.py --update # regenerate
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from pathlib import Path

from repro.analysis.study import Study
from repro.dataset.worldgen import generate_world
from repro.exec import StudyExecutor
from repro.faults import FaultPlan
from repro.reporting.golden import GOLDEN_CONFIG
from repro.reporting.report import render_markdown_report
from repro.retry import DEFAULT_MASKING_POLICY

REPO_ROOT = Path(__file__).resolve().parent.parent
GOLDEN_RELPATH = "tests/golden/stack_differential.json"

#: Differential scenarios: name -> (fault plan, retry policy, workers).
#: The masked pairs prove fault+retry layering is inert; the parallel
#: pairs prove the sharded stack merges byte-identically; the unretried
#: net scenario pins the *degraded* report too (confinement is covered
#: by the chaos tier, byte-stability by this digest).
def scenarios() -> dict[str, tuple[FaultPlan | None, object, int]]:
    masked_plan = FaultPlan.transient_everywhere(rate=0.2, seed=5)
    return {
        "clean-serial": (None, None, 1),
        "clean-parallel": (None, None, 3),
        "masked-serial": (masked_plan, DEFAULT_MASKING_POLICY, 1),
        "masked-parallel": (masked_plan, DEFAULT_MASKING_POLICY, 3),
        "net-unretried-serial": (
            FaultPlan.transient_net(rate=0.2, seed=5), None, 1
        ),
    }


def compute_digests() -> dict[str, str]:
    """Render every scenario's report and digest it (deterministic)."""
    world = generate_world(GOLDEN_CONFIG)
    digests: dict[str, str] = {}
    for name, (faults, retry_policy, workers) in scenarios().items():
        study = Study.from_world(
            world, faults=faults, retry_policy=retry_policy
        )
        report = study.run(executor=StudyExecutor(workers=workers))
        rendered = render_markdown_report(report, title=f"stack golden: {name}")
        digests[name] = hashlib.sha256(
            rendered.encode("utf-8")
        ).hexdigest()
    return digests


def golden_path(root: str | Path = REPO_ROOT) -> Path:
    return Path(root) / GOLDEN_RELPATH


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update", action="store_true", help="rewrite the committed digests"
    )
    args = parser.parse_args(argv)
    digests = compute_digests()
    path = golden_path()
    if args.update:
        path.write_text(json.dumps(digests, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path.relative_to(REPO_ROOT)}")
        for name, digest in sorted(digests.items()):
            print(f"  {name}: {digest[:16]}")
        return 0
    committed = json.loads(path.read_text())
    failures = {
        name: (committed.get(name), digest)
        for name, digest in digests.items()
        if committed.get(name) != digest
    }
    for name, (want, got) in sorted(failures.items()):
        print(f"MISMATCH {name}: committed {want} != measured {got}")
    if not failures:
        print(f"all {len(digests)} differential digests match")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
