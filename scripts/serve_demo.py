"""Demo: the link-status service, from cold study to overload sweep.

Usage::

    python scripts/serve_demo.py [n_links] [seed] [options]

    --requests N      requests per load level (default 5000)
    --rps R           service capacity, token-bucket rate (default 2000)
    --levels L,L,...  offered-load multiples of --rps (default 0.5,1,2,4)
    --mode M          serial | thread (default serial; both answer
                      identically — try it)
    --spike-rate R    inject index latency spikes at per-key rate R
    --shards N        domain shards; >1 serves through the cluster tier
    --replicas R      replicas per shard; >1 serves through the cluster
    --policy P        round_robin | least_outstanding | power_of_two
    --crash-rate R    per-replica crash probability (cluster chaos)
    --pattern P       poisson | flash | diurnal arrival process
    --trace PATH      append the service span tree as JSONL
                      (service → request → index-lookup); feed it to
                      scripts/trace_report.py
    --audit-log PATH  write one per-request audit JSONL per load
                      level (PATH stem gains a "-<level>x" suffix);
                      feed it to scripts/slo_report.py
    --metrics-json PATH
                      write one canonical metrics snapshot JSON per
                      load level (same suffix scheme)

Builds a world, runs the batch study, freezes it into a
:class:`~repro.service.LinkStatusIndex`, then replays seeded Zipf
traffic at each offered load and prints the per-level digest: virtual
throughput, p50/p99 latency, cache hit rate, shed rate. With cluster
flags, the same traffic is served by N shards × R replicas — run both
and diff the response surface: identical when chaos is off. Every
number except wall time is deterministic in (world seed, workload
seed, config) — run it twice and diff.
"""

import argparse
import sys
import time
from pathlib import Path

from repro.analysis.study import Study
from repro.dataset.worldgen import WorldConfig, generate_world
from repro.faults import FaultSpec
from repro.obs import Tracer, render_json
from repro.service import (
    AuditLog,
    ClusterConfig,
    ClusterService,
    LinkStatusIndex,
    LinkStatusService,
    ServerConfig,
    ServiceFaultPlan,
    WorkloadConfig,
    generate_workload,
)


def _level_path(path: Path, level: float) -> Path:
    """Per-level output file: request ids repeat across load levels,
    so each level gets its own artifact."""
    return path.with_name(f"{path.stem}-{level:g}x{path.suffix}")


def parse_args(argv):
    parser = argparse.ArgumentParser(
        description="Serve a completed study and sweep offered load."
    )
    parser.add_argument("n_links", nargs="?", type=int, default=2600)
    parser.add_argument("seed", nargs="?", type=int, default=11)
    parser.add_argument("--requests", type=int, default=5000)
    parser.add_argument("--rps", type=float, default=2000.0)
    parser.add_argument("--levels", default="0.5,1,2,4")
    parser.add_argument("--mode", choices=("serial", "thread"), default="serial")
    parser.add_argument("--spike-rate", type=float, default=0.0)
    parser.add_argument("--shards", type=int, default=1)
    parser.add_argument("--replicas", type=int, default=1)
    parser.add_argument(
        "--policy",
        choices=("round_robin", "least_outstanding", "power_of_two"),
        default="round_robin",
    )
    parser.add_argument("--crash-rate", type=float, default=0.0)
    parser.add_argument(
        "--pattern", choices=("poisson", "flash", "diurnal"), default="poisson"
    )
    parser.add_argument("--trace", type=Path, default=None)
    parser.add_argument("--audit-log", type=Path, default=None)
    parser.add_argument("--metrics-json", type=Path, default=None)
    return parser.parse_args(argv)


def main(argv=None) -> int:
    args = parse_args(argv if argv is not None else sys.argv[1:])
    levels = [float(part) for part in args.levels.split(",") if part]

    print(f"world: {args.n_links} links, seed {args.seed}")
    world = generate_world(
        WorldConfig(
            n_links=args.n_links, target_sample=args.n_links, seed=args.seed
        )
    )
    start = time.perf_counter()
    report = Study.from_world(world).run()
    index = LinkStatusIndex.build(report)
    print(
        f"study + index build: {time.perf_counter() - start:.1f}s -> "
        f"{len(index)} entries, version {index.version}"
    )

    config = ServerConfig(rate_rps=args.rps)
    faults = None
    if args.spike_rate or args.crash_rate:
        faults = ServiceFaultPlan(
            seed=args.seed,
            index_spike=FaultSpec(rate=args.spike_rate, permanent=True),
            replica_crash=FaultSpec(rate=args.crash_rate, permanent=True),
        )
    clustered = args.shards > 1 or args.replicas > 1
    tracer = Tracer() if args.trace else None
    urls = [entry.url for entry in index.entries]
    if clustered:
        print(
            f"cluster: {args.shards} shards x {args.replicas} replicas, "
            f"policy {args.policy}"
        )
    for level in levels:
        workload = generate_workload(
            urls,
            WorkloadConfig(
                n_requests=args.requests,
                offered_rps=args.rps * level,
                seed=args.seed,
                aggregate_fraction=0.02,
                unknown_fraction=0.01,
                pattern=args.pattern,
            ),
        )
        audit = AuditLog() if args.audit_log else None
        if clustered:
            service = ClusterService(
                index,
                config,
                ClusterConfig(
                    n_shards=args.shards,
                    replicas_per_shard=args.replicas,
                    policy=args.policy,
                ),
                tracer=tracer,
                faults=faults,
                audit=audit,
            )
        else:
            service = LinkStatusService(
                index, config, tracer=tracer, faults=faults, audit=audit
            )
        wall_start = time.perf_counter()
        result = service.serve(workload, mode=args.mode)
        wall = time.perf_counter() - wall_start
        print()
        print(f"== offered {args.rps * level:g} rps ({level:g}x capacity) ==")
        print(result.summary())
        if clustered:
            print(
                f"redispatches {result.redispatches}; "
                f"gave up (503) {len(result.unavailable_ids)}; "
                f"replica fault events {len(result.fault_events)}"
            )
            digest = result.replica_digest()
            for replica_id in result.replica_ids:
                lookups = digest[replica_id].get("service.index.lookups", 0)
                ok = digest[replica_id].get("service.requests.ok", 0)
                print(
                    f"  {replica_id}: {int(ok)} ok, {int(lookups)} lookups"
                )
        print(f"replay wall: {wall:.3f}s")
        if audit is not None:
            audit_path = _level_path(args.audit_log, level)
            written = audit.write_jsonl(audit_path)
            print(f"wrote {written} audit records to {audit_path}")
        if args.metrics_json is not None:
            metrics_path = _level_path(args.metrics_json, level)
            metrics_path.write_text(
                render_json(result.metrics), encoding="utf-8"
            )
            print(f"wrote metrics snapshot to {metrics_path}")

    if tracer is not None:
        written = tracer.write_jsonl(args.trace)
        print(f"\nwrote {written} spans to {args.trace}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
