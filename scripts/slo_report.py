"""Grade a serve run's SLOs from its audit log; attribute the burn.

Usage::

    python scripts/serve_demo.py 2600 11 --shards 2 --replicas 2 \
        --crash-rate 0.5 --audit-log /tmp/audit.jsonl \
        --trace /tmp/trace.jsonl --metrics-json /tmp/metrics.json
    python scripts/slo_report.py /tmp/audit-1x.jsonl \
        --trace /tmp/trace.jsonl --metrics /tmp/metrics-1x.json

Reads the per-request audit JSONL the service tier writes (see
:mod:`repro.service.audit`) and prints:

- the SLO verdict table — availability, latency, and shed-rate
  objectives graded with exact error-budget accounting and
  multi-window burn-rate alerts (:mod:`repro.obs.slo`);
- the chaos attribution table — each bad SLI event charged to the
  (replica, fault channel) whose forced re-dispatches the audit log
  blames, so "who burned the budget" is a computed answer;
- with ``--trace``, the trace-side forced re-dispatch counts per
  (replica, channel) joined next to the audit's blame trail;
- with ``--metrics``, per-replica latency quantiles estimated from
  the snapshot's prefixed histogram families
  (:func:`~repro.obs.metrics.histogram_quantile`).

Everything is deterministic: the same audit bytes always grade to the
same verdicts, alerts, and attribution. Exits 0 when every SLO is
met, 1 otherwise — usable as a chaos-drill gate in CI.
"""

import argparse
import json
import sys
from pathlib import Path

from repro.obs import (
    SloSpec,
    burn_attribution,
    evaluate,
    events_from_audit,
    histogram_quantile,
    read_jsonl,
    redispatch_attribution,
    render_attribution,
)
from repro.service import read_audit_jsonl


def parse_args(argv):
    parser = argparse.ArgumentParser(
        description="Grade SLOs over a service audit log."
    )
    parser.add_argument("audit", type=Path, help="audit JSONL to grade")
    parser.add_argument(
        "--trace", type=Path, default=None,
        help="service span JSONL (adds re-dispatch counts)",
    )
    parser.add_argument(
        "--metrics", type=Path, default=None,
        help="metrics snapshot JSON (adds per-replica quantiles)",
    )
    parser.add_argument(
        "--availability", type=float, default=0.999,
        help="availability objective (default 0.999)",
    )
    parser.add_argument(
        "--latency-objective", type=float, default=0.99,
        help="fraction of answers under the latency bar (default 0.99)",
    )
    parser.add_argument(
        "--latency-threshold-ms", type=float, default=250.0,
        help="the latency bar in virtual ms (default 250)",
    )
    parser.add_argument(
        "--shed-rate", type=float, default=0.95,
        help="not-shed objective (default 0.95)",
    )
    parser.add_argument(
        "--json", type=Path, default=None,
        help="also write the full report as canonical JSON",
    )
    return parser.parse_args(argv)


def build_specs(args) -> tuple[SloSpec, ...]:
    return (
        SloSpec(
            name="availability", kind="availability",
            objective=args.availability,
        ),
        SloSpec(
            name="latency-p99", kind="latency",
            objective=args.latency_objective,
            threshold_ms=args.latency_threshold_ms,
        ),
        SloSpec(name="shed-rate", kind="shed_rate", objective=args.shed_rate),
    )


def replica_quantiles(snapshot: dict) -> dict[str, dict[str, float]]:
    """Per-replica latency quantiles from prefixed histogram families."""
    prefix, family = "service.replica.", ".service.latency_ms"
    quantiles: dict[str, dict[str, float]] = {}
    for name, data in sorted(snapshot.get("histograms", {}).items()):
        if not (name.startswith(prefix) and name.endswith(family)):
            continue
        replica = name[len(prefix):-len(family)]
        bounds = tuple(data["bounds"])
        counts = tuple(data["counts"])
        quantiles[replica] = {
            "count": data["count"],
            "p50": histogram_quantile(bounds, counts, 0.50),
            "p99": histogram_quantile(bounds, counts, 0.99),
        }
    return quantiles


def main(argv=None) -> int:
    args = parse_args(argv if argv is not None else sys.argv[1:])
    records = read_audit_jsonl(args.audit)
    if not records:
        print(f"no audit records in {args.audit}")
        return 1
    specs = build_specs(args)
    report = evaluate(events_from_audit(records), specs)

    print(f"audit: {args.audit} ({len(records)} records)")
    print()
    print("SLO verdicts:")
    print(report.render())
    print()

    table = burn_attribution(records, specs)
    print("budget burn by (replica, fault channel):")
    print(render_attribution(table, specs))
    print()

    if args.trace is not None:
        spans = read_jsonl(args.trace)
        redispatches = redispatch_attribution(spans)
        if redispatches:
            print("trace re-dispatches by (replica, fault channel):")
            for (replica, channel), count in redispatches.items():
                print(f"  {replica:<12} {channel:<12} {count:>6}")
        else:
            print(f"trace: no re-dispatch spans in {args.trace}")
        print()

    if args.metrics is not None:
        snapshot = json.loads(args.metrics.read_text(encoding="utf-8"))
        quantiles = replica_quantiles(snapshot)
        if quantiles:
            print("per-replica latency quantiles (from the snapshot):")
            print(
                f"  {'replica':<12} {'served':>8} {'p50 ms':>9} {'p99 ms':>9}"
            )
            for replica, row in quantiles.items():
                print(
                    f"  {replica:<12} {row['count']:>8} "
                    f"{row['p50']:>9.2f} {row['p99']:>9.2f}"
                )
        else:
            print(f"metrics: no per-replica families in {args.metrics}")
        print()

    if args.json is not None:
        payload = report.to_dict()
        payload["attribution"] = [
            {"replica": replica, "channel": channel, **row}
            for (replica, channel), row in table.items()
        ]
        args.json.write_text(
            json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n",
            encoding="utf-8",
        )
        print(f"wrote JSON report to {args.json}")

    print("verdict:", "ALL SLOs MET" if report.met else "SLO VIOLATED")
    return 0 if report.met else 1


if __name__ == "__main__":
    sys.exit(main())
