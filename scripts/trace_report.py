"""Answer the audit questions a study trace exists for, from JSONL alone.

Usage::

    python scripts/full_run.py 2600 11 --trace /tmp/run.jsonl
    python scripts/trace_report.py /tmp/run.jsonl [--top N]

Reads the span log ``full_run.py --trace`` appends (one finished span
per line; see :mod:`repro.obs.trace`) and prints:

- span counts by kind — how much the run was instrumented;
- per-phase wall totals — these match the ``phases:`` line of the
  run's stats block exactly, because ``StudyStats.phase`` writes the
  same measured figure to both the counter and the span;
- the top-N most wall-expensive URLs, with the fetch/CDX/retry
  traffic each one caused;
- failure attribution by Figure-4 bucket (records, wall time, and
  backend traffic per outcome);
- per-phase latency histograms over the individually-timed work items
  (record stages and backend calls).

Service-tier traces (``serve_demo.py --trace`` / ``repro serve
--trace``) additionally get the cluster geometry: per-replica request
counts (carriers vs coalesced riders, shard membership, virtual
latency booked) and forced re-dispatch counts per (replica, fault
channel) — the trace-side mirror of the audit log's blame trail.

Everything is computed by :mod:`repro.obs.traceview`; this file is
only argument parsing and text rendering.
"""

import argparse
import sys
from pathlib import Path

from repro.obs import (
    Histogram,
    bucket_attribution,
    kind_counts,
    phase_latency_histograms,
    phase_totals,
    read_jsonl,
    redispatch_attribution,
    replica_attribution,
    top_records,
)

BAR_WIDTH = 40


def parse_args(argv):
    parser = argparse.ArgumentParser(
        description="Summarize a study trace written by full_run.py --trace."
    )
    parser.add_argument("trace", type=Path, help="JSONL span log to read")
    parser.add_argument(
        "--top",
        type=int,
        default=10,
        help="how many most-expensive URLs to list (default 10)",
    )
    return parser.parse_args(argv)


def render_histogram(histogram: Histogram) -> str:
    """Text rendering of one latency histogram, one bucket per line.

    Empty leading/trailing buckets are elided so short traces don't
    print a wall of zeros; the scale bar is per-histogram.
    """
    labels = [f"<= {bound:g}s" for bound in histogram.bounds]
    labels.append(f"> {histogram.bounds[-1]:g}s")
    occupied = [i for i, count in enumerate(histogram.counts) if count]
    if not occupied:
        return "  (no observations)"
    lo, hi = occupied[0], occupied[-1]
    peak = max(histogram.counts)
    lines = []
    for index in range(lo, hi + 1):
        count = histogram.counts[index]
        bar = "#" * max(round(BAR_WIDTH * count / peak), 1 if count else 0)
        lines.append(f"  {labels[index]:>12} {count:>7} {bar}")
    lines.append(
        f"  {'':>12} n={histogram.count}, mean={histogram.mean * 1000:.3f} ms"
    )
    return "\n".join(lines)


def main(argv=None) -> int:
    args = parse_args(argv if argv is not None else sys.argv[1:])
    spans = read_jsonl(args.trace)
    if not spans:
        print(f"no spans in {args.trace}")
        return 1

    print(f"trace: {args.trace} ({len(spans)} spans)")
    print()

    print("spans by kind:")
    for kind, count in kind_counts(spans).items():
        print(f"  {kind:>14} {count:>8}")
    print()

    totals = phase_totals(spans)
    if totals:
        print("phase wall totals (match the stats block's phases line):")
        for name, seconds in totals.items():
            print(f"  {name:>14} {seconds:>9.2f}s")
        print(f"  {'total':>14} {sum(totals.values()):>9.2f}s")
        print()

    records = top_records(spans, n=args.top)
    if records:
        print(f"top {len(records)} most expensive URLs:")
        print(
            f"  {'wall ms':>9} {'bucket':>12} {'fetch':>5} "
            f"{'cdx':>5} {'retry':>5}  url"
        )
        for cost in records:
            print(
                f"  {cost.wall_seconds * 1000:>9.3f} {cost.bucket:>12} "
                f"{cost.fetches:>5} {cost.cdx_queries:>5} "
                f"{cost.retries:>5}  {cost.url}"
            )
        print()

    buckets = bucket_attribution(spans)
    if buckets:
        print("attribution by Figure-4 bucket:")
        print(
            f"  {'bucket':>12} {'records':>8} {'wall s':>8} "
            f"{'fetches':>8} {'cdx':>8} {'retries':>8}"
        )
        for cost in buckets.values():
            print(
                f"  {cost.bucket:>12} {cost.records:>8} "
                f"{cost.wall_seconds:>8.2f} {cost.fetches:>8} "
                f"{cost.cdx_queries:>8} {cost.retries:>8}"
            )
        print()

    histograms = phase_latency_histograms(spans)
    if histograms:
        print("per-phase latency of individually-timed work items:")
        for phase, histogram in sorted(histograms.items()):
            print(f"{phase}:")
            print(render_histogram(histogram))
        print()

    replicas = replica_attribution(spans)
    if replicas:
        print("cluster replicas (from service.request spans):")
        print(
            f"  {'replica':<12} {'shard':<10} {'requests':>8} "
            f"{'carriers':>8} {'riders':>8} {'sheds':>6} {'virtual ms':>11}"
        )
        for cost in replicas.values():
            print(
                f"  {cost.replica:<12} {cost.shard or '-':<10} "
                f"{cost.requests:>8} {cost.carriers:>8} {cost.riders:>8} "
                f"{cost.sheds:>6} {cost.virtual_ms:>11.1f}"
            )
        print()

    redispatches = redispatch_attribution(spans)
    if redispatches:
        print("forced re-dispatches by (replica, fault channel):")
        for (replica, channel), count in redispatches.items():
            print(f"  {replica:<12} {channel:<12} {count:>6}")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
